"""Composable multi-phase attack scenarios.

The paper evaluates each guardian kernel on fixed-length homogeneous
workloads.  Real deployments change behaviour over time — a service
boots through allocation churn, settles into steady serving, absorbs
an attack burst, idles.  A :class:`Scenario` declares that shape as an
ordered tuple of :class:`Phase` (workload profile + duration + attack
mix); the compositor splices the phases into one trace with ground
truth carried correctly across the boundaries:

* each phase's heap lives in a fresh range past everything the
  previous phases allocated (objects never alias, so ASan/UaF ground
  truth stays exact);
* each phase's static code is laid out in its own region (callsites
  and branch sites never collide between profiles);
* the call stack is unwound at every boundary (a phase hands its
  successor a balanced stack, so the shadow stack kernel's push/pop
  pairing never straddles a profile switch);
* record sequence numbers and attack ids run continuously across the
  whole composition.

Phases are the compositor's unit of memory: :func:`compose_stream`
writes each phase to disk through a
:class:`~repro.trace.stream.TraceWriter` and drops it, so arbitrarily
long scenarios run with peak memory bounded by the largest phase —
repeat phases (:meth:`Scenario.repeated`) rather than stretching them
(:meth:`Scenario.with_length`) to grow a scenario without growing its
footprint.  :func:`compose_trace` materialises the identical record
sequence in memory; the differential tests hold the two bit-identical.

Named scenarios register like kernels do in
:mod:`repro.kernels.registry`: :data:`SCENARIOS` maps names to library
definitions and :func:`make_scenario` resolves (and optionally
rescales) them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigError, TraceError
from repro.trace.attacks import AttackKind, AttackPlan, AttackSite, \
    inject_attacks
from repro.trace.generator import CODE_BASE, GLOBAL_BASE, HEAP_BASE, \
    TraceGenerator
from repro.trace.profiles import PARSEC_PROFILES, WorkloadProfile
from repro.trace.record import InstrRecord, Trace
from repro.trace.stream import DEFAULT_CHUNK_RECORDS, StreamedTrace, \
    TraceWriter
from repro.utils.rng import DeterministicRng

#: Address headroom between one phase's heap top and the next phase's
#: heap base (keeps redzone/quarantine probes of adjacent phases apart).
PHASE_HEAP_GAP = 0x1_0000

#: Code region reserved per phase (far above any profile's footprint).
PHASE_CODE_STRIDE = 0x10_0000


@dataclass(frozen=True)
class Phase:
    """One scenario segment: a workload profile, a duration, and the
    attack mix injected into it.

    ``profile`` is a PARSEC profile name or a custom
    :class:`WorkloadProfile`; ``length`` is the phase's record count
    (treated as a proportional weight by
    :meth:`Scenario.with_length`).
    """

    profile: str | WorkloadProfile
    length: int
    attacks: tuple[AttackPlan, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigError(
                f"phase length must be positive, got {self.length}")
        if isinstance(self.attacks, AttackPlan):
            object.__setattr__(self, "attacks", (self.attacks,))
        elif not isinstance(self.attacks, tuple):
            object.__setattr__(self, "attacks", tuple(self.attacks))
        if isinstance(self.profile, str) \
                and self.profile not in PARSEC_PROFILES:
            raise ConfigError(
                f"unknown profile {self.profile!r}; available: "
                f"{sorted(PARSEC_PROFILES)}")

    def resolved_profile(self) -> WorkloadProfile:
        if isinstance(self.profile, str):
            return PARSEC_PROFILES[self.profile]
        return self.profile

    def _token(self) -> tuple:
        profile = self.profile if isinstance(self.profile, str) \
            else ("custom", self.profile.name, repr(self.profile))
        attacks = tuple((p.kind.name, p.count, p.pmc_bounds,
                         p.placement)
                        for p in self.attacks)
        return (profile, self.length, attacks)


@dataclass(frozen=True)
class Scenario:
    """An ordered composition of phases, hashable and picklable so it
    can ride inside a :class:`~repro.runner.spec.RunSpec`."""

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.phases, tuple):
            object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ConfigError(f"scenario {self.name!r} has no phases")

    def total_length(self) -> int:
        return sum(phase.length for phase in self.phases)

    def attack_count(self) -> int:
        return sum(plan.count for phase in self.phases
                   for plan in phase.attacks)

    def with_length(self, total: int) -> "Scenario":
        """Rescale phase lengths proportionally to sum to ``total``.

        Phase lengths act as weights; cumulative rounding keeps the
        result deterministic and exactly ``total`` records long.  Very
        small totals can leave phases too short for their attack plans
        (a UaF phase needs ~2600 records of room — see
        :meth:`min_total`) — prefer :meth:`repeated` for growing a
        scenario, and stay above ``min_total()`` when shrinking one.
        """
        if total <= 0:
            raise ConfigError(f"total length must be positive: {total}")
        current = self.total_length()
        if current == total:
            return self
        phases = []
        cum = 0
        boundary = 0
        for phase in self.phases:
            cum += phase.length
            nxt = round(total * cum / current)
            phases.append(replace(phase, length=max(1, nxt - boundary)))
            boundary = nxt
        return Scenario(name=self.name, phases=tuple(phases))

    #: Minimum phase length able to host a UaF plan: quarantine
    #: poisoning is deferred past the engines' in-flight window, so the
    #: free, the ~1100-record ageing gap and the dangling load must all
    #: fit inside the phase (plus the injector's warm-up skip).
    _MIN_UAF_PHASE = 2600
    _MIN_ATTACK_PHASE = 600

    def min_total(self) -> int:
        """The smallest total length this scenario composes at without
        starving any phase's attack plan (used by harnesses that clamp
        ``REPRO_TRACE_LEN`` scaling).

        Phase lengths are proportional weights under
        :meth:`with_length`, so the binding constraint is the phase
        whose *share* of the total must still cover its floor.
        """
        weight_total = self.total_length()
        needed = 1
        for phase in self.phases:
            kinds = {plan.kind for plan in phase.attacks}
            if AttackKind.UAF_ACCESS in kinds:
                floor = self._MIN_UAF_PHASE
            elif kinds:
                floor = self._MIN_ATTACK_PHASE
            else:
                continue
            needed = max(needed,
                         -(-floor * weight_total // phase.length))
        return needed

    def repeated(self, times: int) -> "Scenario":
        """Tile the phase list ``times`` times (the bounded-memory way
        to grow a scenario: phase sizes, and therefore the streaming
        compositor's peak memory, stay constant)."""
        if times <= 0:
            raise ConfigError(f"repeat count must be positive: {times}")
        return Scenario(name=f"{self.name}x{times}",
                        phases=self.phases * times)

    def with_attacks(self, *plans: AttackPlan,
                     phase: int | None = None) -> "Scenario":
        """The scenario with ``plans`` as the attack mix of one phase
        (the longest, unless ``phase`` picks an index) and every other
        phase clean — how the latency harnesses point their per-kernel
        attack kind at an arbitrary scenario."""
        if phase is None:
            phase = max(range(len(self.phases)),
                        key=lambda i: self.phases[i].length)
        phases = tuple(
            replace(p, attacks=plans if i == phase else ())
            for i, p in enumerate(self.phases))
        return Scenario(name=self.name, phases=phases)

    def cache_token(self) -> tuple:
        """A hashable, repr-stable identity for cache keys."""
        return (self.name,
                tuple(phase._token() for phase in self.phases))


class ScenarioComposer:
    """Splices a scenario's phases into one continuous trace.

    :meth:`phases` yields each phase's records (already offset into
    the composed sequence space) one phase at a time; the composed
    metadata — object table, heap top, attack sites — accumulates on
    the composer and is complete once the iterator is exhausted.
    Callers choose the sink: concatenate (:func:`compose_trace`) or
    write-and-drop (:func:`compose_stream`).
    """

    def __init__(self, scenario: Scenario, seed: int):
        self.scenario = scenario
        self.seed = seed
        self.sites: list[AttackSite] = []
        self.objects: list = []
        self.count = 0
        self.heap_end = HEAP_BASE
        self.global_end = 0
        self.warm_end = 0

    def phases(self) -> Iterator[list[InstrRecord]]:
        rng = DeterministicRng(self.seed)
        heap_base = HEAP_BASE
        seq_offset = 0
        id_offset = 0
        for index, phase in enumerate(self.scenario.phases):
            phase_seed = rng.fork(index + 1).next_u64()
            gen = TraceGenerator(
                phase.resolved_profile(), seed=phase_seed,
                length=phase.length,
                heap_base=heap_base,
                code_base=CODE_BASE + index * PHASE_CODE_STRIDE)
            records = list(gen.iter_records())
            # Balanced hand-off: close every frame the phase left open.
            records.extend(gen.unwind_records(len(records)))
            meta = gen.final_meta()
            phase_trace = Trace(
                name=self.scenario.name, seed=phase_seed,
                records=records, **meta)

            for plan in phase.attacks:
                try:
                    sites = inject_attacks(
                        phase_trace, plan.kind, plan.count,
                        pmc_bounds=plan.pmc_bounds,
                        placement=plan.placement)
                except TraceError as exc:
                    label = phase.label or phase.resolved_profile().name
                    raise TraceError(
                        f"scenario {self.scenario.name!r} phase "
                        f"{index} ({label}, {phase.length} records) "
                        f"cannot host its {plan.kind.name} x"
                        f"{plan.count} plan: {exc}; compose at a "
                        f"total length of at least "
                        f"{self.scenario.min_total()}") from exc
                # Injection numbers attacks from 0 within each call
                # (and may fulfil less than the plan when candidates
                # run out); renumber into the composition's space so
                # composed ids run 0..N-1 with no gaps (phase-local
                # seq == list index, so sites address records
                # directly).
                for new_id, site in enumerate(sites, start=id_offset):
                    records[site.seq].attack_id = new_id
                    self.sites.append(AttackSite(
                        new_id, site.seq + seq_offset, site.kind,
                        site.detail))
                id_offset += len(sites)

            heap_top = max(
                phase_trace.heap_end,
                max((obj.end for obj in phase_trace.objects),
                    default=phase_trace.heap_end))
            for rec in records:
                rec.seq += seq_offset
            for obj in phase_trace.objects:
                obj.alloc_seq += seq_offset
                if obj.free_seq is not None:
                    obj.free_seq += seq_offset
            self.objects.extend(phase_trace.objects)

            seq_offset += len(records)
            heap_base = ((heap_top + 0xFFF) & ~0xFFF) + PHASE_HEAP_GAP
            self.heap_end = heap_top
            self.global_end = max(self.global_end, meta["global_end"])
            self.warm_end = max(self.warm_end, meta["warm_end"])
            yield records
        self.count = seq_offset

    def meta_kwargs(self) -> dict:
        """Composed-trace metadata (valid after :meth:`phases` is
        exhausted), keyword-compatible with ``TraceWriter.finalize``."""
        return dict(objects=self.objects, heap_base=HEAP_BASE,
                    heap_end=self.heap_end, global_base=GLOBAL_BASE,
                    global_end=self.global_end, warm_end=self.warm_end)


def compose_trace(scenario: Scenario,
                  seed: int) -> tuple[Trace, list[AttackSite]]:
    """Compose a scenario into one in-memory :class:`Trace`."""
    composer = ScenarioComposer(scenario, seed)
    records = [rec for chunk in composer.phases() for rec in chunk]
    trace = Trace(name=scenario.name, seed=seed, records=records,
                  **composer.meta_kwargs())
    return trace, composer.sites


def compose_stream(scenario: Scenario, seed: int, path: str | Path,
                   chunk_records: int = DEFAULT_CHUNK_RECORDS,
                   ) -> tuple[StreamedTrace, list[AttackSite]]:
    """Compose a scenario straight to an FGTRACE1 file.

    Bit-identical records to :func:`compose_trace`, but each phase is
    written and dropped, so peak memory is bounded by the largest
    phase instead of the whole composition.
    """
    composer = ScenarioComposer(scenario, seed)
    with TraceWriter(path, name=scenario.name, seed=seed) as writer:
        for records in composer.phases():
            writer.extend(records)
        digest = writer.finalize(**composer.meta_kwargs())
    trace = StreamedTrace(path, chunk_records=chunk_records,
                          digest=digest)
    return trace, composer.sites


# -- the scenario library ---------------------------------------------------

SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (names are unique)."""
    if scenario.name in SCENARIOS:
        raise ConfigError(
            f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def make_scenario(name: str, length: int | None = None) -> Scenario:
    """Resolve a library scenario by name, optionally rescaled to a
    total record count."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise TraceError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    if length is not None:
        scenario = scenario.with_length(length)
    return scenario


#: A near-idle polling profile (no PARSEC analogue): tiny hot working
#: set, branchy wait loops, almost no allocator traffic.
IDLE_PROFILE = WorkloadProfile(
    name="idle-poll", frac_load=0.08, frac_store=0.03,
    frac_branch=0.18, frac_call=0.010, frac_fp=0.0,
    alloc_per_kilo=0.05, mean_alloc_bytes=64, working_set_kb=32,
    locality_skew=2.2, hot_fraction=0.995, branch_bias=0.97,
    dep_distance=5.0, code_footprint_kb=4, max_call_depth=8)

register_scenario(Scenario(
    name="boot-then-serve",
    phases=(
        Phase("dedup", 3000, label="boot"),
        Phase("swaptions", 5000, label="serve",
              attacks=(AttackPlan(AttackKind.RET_HIJACK, 12),)),
    )))

register_scenario(Scenario(
    name="alloc-churn",
    phases=(
        Phase("dedup", 2500, label="churn",
              attacks=(AttackPlan(AttackKind.OOB_ACCESS, 8),)),
        Phase("freqmine", 3500, label="mine",
              attacks=(AttackPlan(AttackKind.UAF_ACCESS, 6),)),
        Phase("dedup", 2000, label="rechurn",
              attacks=(AttackPlan(AttackKind.OOB_ACCESS, 6),)),
    )))

register_scenario(Scenario(
    name="attack-burst",
    phases=(
        Phase("x264", 3000, label="steady"),
        Phase("x264", 1500, label="burst",
              attacks=(AttackPlan(AttackKind.RET_HIJACK, 10),
                       AttackPlan(AttackKind.OOB_ACCESS, 10))),
        Phase("x264", 2500, label="tail"),
    )))

register_scenario(Scenario(
    name="quiescent-idle",
    phases=(
        Phase(IDLE_PROFILE, 2500, label="idle"),
        Phase("blackscholes", 3000, label="burst"),
        Phase(IDLE_PROFILE, 2500, label="idle"),
    )))

register_scenario(Scenario(
    name="mixed-guard",
    phases=(
        Phase("bodytrack", 3000, label="track",
              attacks=(AttackPlan(AttackKind.RET_HIJACK, 8),)),
        Phase("dedup", 3000, label="dedup",
              attacks=(AttackPlan(AttackKind.OOB_ACCESS, 8),)),
        Phase("ferret", 4000, label="query",
              attacks=(AttackPlan(AttackKind.UAF_ACCESS, 6),)),
    )))

SCENARIO_NAMES: tuple[str, ...] = tuple(SCENARIOS)
