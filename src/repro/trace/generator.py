"""Synthetic trace generation from workload profiles.

The generator first lays out *static code* — functions made of fixed
instruction slots, with loop-closing backward branches, biased forward
branches, and fixed call sites — then executes it, drawing data-side
behaviour (addresses, values, allocation events) dynamically.  Static
control structure is what makes the front end behave like real code:
branch sites re-execute, so TAGE/BTB/RAS warm up; loops produce real
instruction-cache locality.

Heap behaviour is tracked with live-object ground truth (for the
ASan/UaF kernels and the attack injector), and calls/returns are
tracked on a real stack (for the shadow stack kernel).

Every record carries a genuine encoded RISC-V word, so the event
filter's SRAM lookup sees exactly the opcode/funct3 indexing the
hardware would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import TraceError
from repro.isa.decode import decode, encode_instr
from repro.isa.opcodes import InstrClass
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import HeapObject, InstrRecord, Trace
from repro.utils.rng import DeterministicRng

CODE_BASE = 0x0000_0000_0001_0000
GLOBAL_BASE = 0x0000_0001_0000_0000
HEAP_BASE = 0x0000_0002_0000_0000
FUNC_BYTES = 1024          # code bytes reserved per function
SLOTS_PER_FUNC = FUNC_BYTES // 4
LINE_BYTES = 64

# Static slot kinds.
_LOAD, _STORE, _BRANCH, _CALL, _FP, _MUL, _DIV, _ALU, _EVENT = range(9)

# Pre-encoded words for the hot paths (encoding is deterministic).
_WORD_CACHE: dict[tuple, int] = {}


def _word(mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
          imm: int = 0) -> int:
    key = (mnemonic, rd, rs1, rs2, imm)
    cached = _WORD_CACHE.get(key)
    if cached is None:
        cached = encode_instr(mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        _WORD_CACHE[key] = cached
    return cached


@dataclass
class _Slot:
    """One static instruction slot."""

    kind: int
    # Branch slots:
    bias: float = 0.0          # probability taken (forward branches)
    target_slot: int = 0
    trip: int = 0              # >0: loop-closing branch with this trip count
    # Call slots:
    callee: int = 0            # function index
    # Memory slots:
    size: int = 8


class _Function:
    """Static code of one synthetic function."""

    __slots__ = ("index", "base", "slots")

    def __init__(self, index: int, base: int, slots: list[_Slot]):
        self.index = index
        self.base = base
        self.slots = slots


class TraceGenerator:
    """Generates one deterministic workload trace."""

    # x8/x9/x18-x20 are long-lived base registers (array bases, frame
    # pointers): loads index off them without waiting on recent
    # results, which gives real codes their memory-level parallelism.
    # x7 is the loop-counter register: a self-recurring 1-cycle chain
    # that branch conditions read, so branches resolve quickly instead
    # of inheriting load latencies through the dependence frontier.
    _BASE_REGS = (8, 9, 18, 19, 20)
    _COUNTER_REG = 7
    _DST_POOL = tuple(r for r in range(5, 32)
                      if r not in (7, 8, 9, 10, 11, 18, 19, 20))

    def __init__(self, profile: WorkloadProfile, seed: int, length: int,
                 max_live_objects: int = 512,
                 heap_base: int = HEAP_BASE, code_base: int = CODE_BASE):
        if length <= 0:
            raise TraceError(f"trace length must be positive, got {length}")
        self.profile = profile
        self.seed = seed
        self.length = length
        self.max_live_objects = max_live_objects
        # Relocatable regions: the scenario compositor places each
        # phase's heap (and code) in a fresh range so ground truth
        # never aliases across phase boundaries.
        self._heap_base = heap_base
        self._code_base = code_base
        self._rng = DeterministicRng(seed)
        self._code_rng = DeterministicRng(seed).fork(0xC0DE)

        p = profile
        self._num_funcs = max(4, p.code_footprint_kb)
        self._num_lines = max(16, p.working_set_kb * 1024 // LINE_BYTES)
        # Probability a memory access touches the heap rather than globals.
        self._heap_frac = min(0.6, 0.10 + p.alloc_per_kilo / 12.0)
        self._event_prob = p.alloc_per_kilo / 1000.0

        # Static-code weights.  Dynamic branch frequency exceeds the
        # static fraction because loop-closing branches re-execute;
        # the 0.55 factor compensates (validated by the mix tests).
        rest = max(0.02, 1.0 - (p.frac_load + p.frac_store
                                + p.frac_branch + p.frac_call + p.frac_fp
                                + p.frac_mul + p.frac_div))
        self._static_kinds = (_LOAD, _STORE, _BRANCH, _CALL, _FP, _MUL,
                              _DIV, _ALU)
        self._static_weights = (p.frac_load, p.frac_store,
                                p.frac_branch * 0.55, p.frac_call,
                                p.frac_fp, p.frac_mul, p.frac_div, rest)

        self._functions: dict[int, _Function] = {}

        # Dynamic walk state.
        self._func = self._get_function(0)
        self._slot = 0
        self._call_stack: list[tuple[int, int, int]] = []  # (func, slot, pc)
        self._recent_dsts: deque[int | None] = deque([None] * 16, maxlen=16)
        # Registers recently written by short-latency ALU ops: branch
        # operands come from here (loop counters, comparison flags) so
        # branches resolve quickly, as in real code.
        self._recent_alu_dsts: deque[int] = deque([5] * 8, maxlen=8)
        self._dst_counter = 0
        self._heap_cursor = heap_base
        self._live: list[HeapObject] = []
        self._objects: list[HeapObject] = []
        self._loop_state: dict[int, int] = {}  # site pc → trips left
        self._cold_cursor = 0   # streaming-burst state for cold accesses
        self._cold_left = 0
        self._init_stores: list[int] = []  # pending memset of new object
        self._ctrl_events = 0  # dynamic calls+returns emitted so far
        self._site_callees: dict[int, int] = {}  # borrowed-call targets

    # -- static code generation -------------------------------------------
    def _get_function(self, index: int) -> _Function:
        func = self._functions.get(index)
        if func is None:
            func = self._build_function(index)
            self._functions[index] = func
        return func

    def _build_function(self, index: int) -> _Function:
        """Lay out one function's static code.

        Kinds are assigned by weighted round-robin (a low-discrepancy
        draw with a random phase) rather than iid sampling: loop
        bodies dominate execution time, so every short window of slots
        must carry the profile's instruction mix or a single hot loop
        skews the whole trace.
        """
        rng = self._code_rng.fork(index + 1)
        n_slots = rng.randint(48, SLOTS_PER_FUNC - 8)
        total = sum(self._static_weights)
        credits = [rng.random() * 0.5 for _ in self._static_kinds]
        slots: list[_Slot] = []
        for i in range(n_slots):
            for k, weight in enumerate(self._static_weights):
                credits[k] += weight / total
            kind_pos = max(range(len(credits)), key=credits.__getitem__)
            credits[kind_pos] -= 1.0
            kind = self._static_kinds[kind_pos]
            slot = _Slot(kind=kind)
            if kind == _BRANCH:
                self._shape_branch(slot, i, n_slots, rng)
            elif kind == _CALL:
                slot.callee = rng.zipf_index(self._num_funcs, skew=3.0)
            elif kind in (_LOAD, _STORE):
                slot.size = rng.weighted_choice((8, 4, 1), (0.6, 0.3, 0.1))
            slots.append(slot)
        return _Function(index, self._code_base + index * FUNC_BYTES,
                         slots)

    def _shape_branch(self, slot: _Slot, i: int, n_slots: int,
                      rng: DeterministicRng) -> None:
        """Give a branch site static shape: loop-closing, biased skip,
        or data-dependent (hard to predict)."""
        roll = rng.random()
        if roll < 0.30 and i >= 8:
            # Loop-closing backward branch with a bounded trip count:
            # a purely probabilistic loop exit has geometric tails that
            # let one tight loop dominate the whole trace.
            slot.trip = rng.randint(4, 16)
            slot.bias = 1.0 - 1.0 / slot.trip
            slot.target_slot = max(0, i - rng.randint(6, 24))
        elif roll < 0.30 + self.profile.branch_bias * 0.80:
            # Strongly biased forward branch (error checks, guards).
            slot.bias = 0.02 if rng.chance(0.7) else 0.98
            slot.target_slot = min(n_slots - 1, i + rng.randint(2, 12))
        else:
            # Data-dependent branch, mildly skewed.
            slot.bias = 0.12 if rng.chance(0.5) else 0.88
            slot.target_slot = min(n_slots - 1, i + rng.randint(2, 8))

    # -- dynamic helpers ----------------------------------------------------
    def _next_dst(self) -> int:
        self._dst_counter += 1
        return self._DST_POOL[self._dst_counter % len(self._DST_POOL)]

    def _dep_src(self) -> int:
        """Pick a source register with realistic producer distance.

        A third of operands are loop-invariant (immediates folded into
        base registers): without them the dependence DAG degenerates
        into a serial chain and ILP collapses far below real code's.
        """
        if self._rng.chance(0.35):
            return self._rng.choice(self._BASE_REGS)
        p = 1.0 / max(1.0, self.profile.dep_distance)
        distance = self._rng.geometric(p, cap=16)
        reg = self._recent_dsts[-distance]
        if reg is None:
            reg = self._rng.choice(self._BASE_REGS)
        return reg

    def _addr_reg(self) -> int:
        """Address registers are usually loop-invariant bases."""
        if self._rng.chance(0.8):
            return self._rng.choice(self._BASE_REGS)
        return self._dep_src()

    # Hot-set size in cache lines: fits comfortably inside the 32 KB,
    # 512-line L1D together with the stack/heap traffic.  The warm set
    # is sized to be L2-resident (4096 lines = 256 KB).
    _HOT_LINES = 320
    _WARM_LINES = 4096

    def _mem_addr(self) -> int:
        """An address in the heap (live object) or the global region.

        Global accesses follow a three-level locality model: with
        probability ``hot_fraction`` they fall in a small hot set
        (zipf-skewed, L1-resident); most of the remainder touches a
        warm, L2-resident set; the rest strides the full working set —
        the cold tail producing LLC/DRAM traffic.
        """
        if self._live and self._rng.chance(self._heap_frac):
            # Heap accesses favour recently allocated objects (the ones
            # the program is actively working on), giving heap lines
            # the reuse a real allocator's locality would.  Accesses
            # stay within each object's initialised prefix (the memset
            # coverage): programs write buffers before reading them.
            live = self._live
            if len(live) > 12 and self._rng.chance(0.85):
                obj = live[self._rng.randint(len(live) - 12, len(live) - 1)]
            else:
                obj = self._rng.choice(live)
            span = min(obj.size, 32 * LINE_BYTES)
            max_off = max(0, span - 8)
            offset = self._rng.randint(0, max_off // 8) * 8 if max_off else 0
            return obj.base + offset
        if self._cold_left > 0:
            # Continue a cold streaming burst: sequential lines, so
            # the misses overlap in the LDQ/DRAM window (the MLP real
            # streaming code exhibits).
            self._cold_left -= 1
            self._cold_cursor += 1
            line = self._cold_cursor % self._num_lines
        elif self._rng.chance(self.profile.hot_fraction):
            hot = min(self._HOT_LINES, self._num_lines)
            line = self._rng.zipf_index(hot, self.profile.locality_skew)
        elif self._rng.chance(0.95) or not self._rng.chance(1.0 / 6.0):
            # Cold accesses are ~5 % of the non-hot tail, calibrated to
            # PARSEC-like LLC MPKI (~1-3); the second clause keeps the
            # total cold volume constant despite ~6-access bursts.
            line = self._rng.randint(0, min(self._WARM_LINES,
                                            self._num_lines) - 1)
        else:
            line = self._rng.randint(0, self._num_lines - 1)
            self._cold_cursor = line
            self._cold_left = self._rng.randint(3, 8)
        offset = self._rng.randint(0, 6) * 8
        return GLOBAL_BASE + line * LINE_BYTES + offset

    @property
    def _pc(self) -> int:
        return self._func.base + self._slot * 4

    # -- per-kind emitters ----------------------------------------------
    def _emit(self, seq: int, pc: int, word: int,
              iclass: InstrClass | None = None, **fields) -> InstrRecord:
        decoded = decode(word)
        return InstrRecord(
            seq=seq, pc=pc, word=word, opcode=decoded.opcode,
            funct3=decoded.funct3,
            iclass=iclass if iclass is not None else decoded.iclass,
            **fields)

    def _exec_load(self, seq: int, slot: _Slot) -> InstrRecord:
        dst = self._next_dst()
        addr_reg = self._addr_reg()
        mnemonic = {8: "ld", 4: "lw", 1: "lbu"}[slot.size]
        word = _word(mnemonic, rd=dst, rs1=addr_reg, imm=0)
        rec = self._emit(seq, self._pc, word, dst=dst, srcs=(addr_reg,),
                         mem_addr=self._mem_addr(), mem_size=slot.size,
                         result=self._rng.next_u64())
        self._recent_dsts.append(dst)
        self._slot += 1
        return rec

    def _exec_store(self, seq: int, slot: _Slot) -> InstrRecord:
        addr_reg = self._addr_reg()
        data_reg = self._dep_src()
        mnemonic = {8: "sd", 4: "sw", 1: "sb"}[slot.size]
        word = _word(mnemonic, rs1=addr_reg, rs2=data_reg, imm=0)
        rec = self._emit(seq, self._pc, word, srcs=(addr_reg, data_reg),
                         mem_addr=self._mem_addr(), mem_size=slot.size,
                         result=self._rng.next_u64())
        self._recent_dsts.append(None)
        self._slot += 1
        return rec

    def _exec_counter(self, seq: int) -> InstrRecord:
        """Loop-counter update: addi x7, x7, 1 (self-recurring)."""
        word = _word("addi", rd=self._COUNTER_REG, rs1=self._COUNTER_REG,
                     imm=1)
        rec = self._emit(seq, self._pc, word, dst=self._COUNTER_REG,
                         srcs=(self._COUNTER_REG,),
                         result=self._rng.next_u64())
        self._recent_dsts.append(None)
        self._slot += 1
        return rec

    def _exec_branch(self, seq: int, slot: _Slot) -> InstrRecord:
        if slot.trip > 0:
            # Loop-closing branch: deterministic trip count with small
            # jitter (TAGE learns the pattern, mispredicting exits).
            site = self._pc
            remaining = self._loop_state.get(site)
            if remaining is None:
                remaining = max(1, slot.trip
                                + self._rng.randint(-2, 2))
            remaining -= 1
            taken = remaining > 0
            if taken:
                self._loop_state[site] = remaining
            else:
                self._loop_state.pop(site, None)
        else:
            taken = self._rng.chance(slot.bias)
        target = self._func.base + slot.target_slot * 4
        # Branch conditions: predominantly the loop counter (resolves
        # in a cycle), otherwise a recent ALU result.
        if self._rng.chance(0.85):
            rs1, rs2 = self._COUNTER_REG, 0
        else:
            rs1 = self._rng.choice(self._recent_alu_dsts)
            rs2 = self._rng.choice(self._recent_alu_dsts)
        word = _word("bne", rs1=rs1, rs2=rs2, imm=0)
        rec = self._emit(seq, self._pc, word, srcs=(rs1, rs2), taken=taken,
                         target=target)
        self._recent_dsts.append(None)
        self._slot = slot.target_slot if taken else self._slot + 1
        return rec

    def _exec_call(self, seq: int, slot: _Slot) -> InstrRecord:
        callee = self._get_function(slot.callee)
        pc = self._pc
        word = _word("jal", rd=1, imm=0)
        rec = self._emit(seq, pc, word, dst=1, taken=True,
                         target=callee.base, result=pc + 4)
        self._call_stack.append((self._func.index, self._slot + 1, pc + 4))
        self._recent_dsts.append(1)
        self._func = callee
        self._slot = 0
        return rec

    def _exec_borrowed_call(self, seq: int) -> InstrRecord:
        """A call emitted from a borrowed ALU slot (per-site target)."""
        site = self._pc
        callee_idx = self._callee_for_site(site)
        callee = self._get_function(callee_idx)
        word = _word("jal", rd=1, imm=0)
        rec = self._emit(seq, site, word, dst=1, taken=True,
                         target=callee.base, result=site + 4)
        self._call_stack.append((self._func.index, self._slot + 1,
                                 site + 4))
        self._recent_dsts.append(1)
        self._func = callee
        self._slot = 0
        return rec

    def _callee_for_site(self, site: int) -> int:
        callees = self._site_callees
        idx = callees.get(site)
        if idx is None:
            idx = self._rng.zipf_index(self._num_funcs, skew=3.0)
            callees[site] = idx
        return idx

    def _exec_ret(self, seq: int) -> InstrRecord:
        func_idx, slot, return_pc = self._call_stack.pop()
        word = _word("jalr", rd=0, rs1=1, imm=0)
        rec = self._emit(seq, self._pc, word, srcs=(1,), taken=True,
                         target=return_pc)
        self._recent_dsts.append(None)
        self._func = self._get_function(func_idx)
        self._slot = slot
        return rec

    def _exec_alu(self, seq: int, kind: int) -> InstrRecord:
        if kind == _ALU and self._rng.chance(0.2):
            return self._exec_counter(seq)
        dst = self._next_dst()
        rs1, rs2 = self._dep_src(), self._dep_src()
        if kind == _FP:
            word = _word("fadd", rd=dst, rs1=rs1, rs2=rs2)
        elif kind == _MUL:
            word = _word("mul", rd=dst, rs1=rs1, rs2=rs2)
        elif kind == _DIV:
            word = _word("div", rd=dst, rs1=rs1, rs2=rs2)
        else:
            word = _word("add", rd=dst, rs1=rs1, rs2=rs2)
        rec = self._emit(seq, self._pc, word, dst=dst, srcs=(rs1, rs2),
                         result=self._rng.next_u64())
        self._recent_dsts.append(dst)
        if kind == _ALU:
            self._recent_alu_dsts.append(dst)
        self._slot += 1
        return rec

    def _exec_alloc(self, seq: int) -> InstrRecord:
        granules = self._rng.geometric(
            min(1.0, 16.0 / self.profile.mean_alloc_bytes), cap=4096)
        size = granules * 16
        base = self._heap_cursor
        self._heap_cursor += size + 16  # gap keeps objects disjoint
        obj = HeapObject(base=base, size=size, alloc_seq=seq)
        self._live.append(obj)
        self._objects.append(obj)
        # Fresh allocations are initialised by a streaming memset: the
        # sequential stores overlap their (compulsory) misses, instead
        # of paying them serially on later random accesses.
        lines = min(32, max(1, size // LINE_BYTES))
        self._init_stores = [base + i * LINE_BYTES for i in range(lines)]
        word = _word("custom0.f0", rd=0, rs1=10, rs2=11)
        rec = self._emit(seq, self._pc, word, iclass=InstrClass.CUSTOM,
                         mem_addr=base, mem_size=size, result=size)
        self._recent_dsts.append(None)
        self._slot += 1
        return rec

    def _exec_init_store(self, seq: int) -> InstrRecord:
        """One store of a fresh object's initialising memset."""
        addr = self._init_stores.pop(0)
        word = _word("sd", rs1=10, rs2=0, imm=0)
        rec = self._emit(seq, self._pc, word, srcs=(10,), mem_addr=addr,
                         mem_size=8, result=0)
        self._recent_dsts.append(None)
        self._slot += 1
        return rec

    def _exec_free(self, seq: int) -> InstrRecord:
        idx = self._rng.randint(0, len(self._live) - 1)
        obj = self._live.pop(idx)
        obj.free_seq = seq
        word = _word("custom0.f1", rd=0, rs1=10)
        rec = self._emit(seq, self._pc, word, iclass=InstrClass.CUSTOM,
                         mem_addr=obj.base, mem_size=obj.size,
                         result=obj.size)
        self._recent_dsts.append(None)
        self._slot += 1
        return rec

    # -- main loop ----------------------------------------------------
    def iter_records(self):
        """Yield the trace's records one at a time.

        The streaming pipeline consumes this directly (one record plus
        the heap ground-truth table resident); :meth:`generate`
        materialises the same sequence.  After exhaustion the
        generation metadata is available from :meth:`final_meta`.
        """
        rng = self._rng
        max_depth = self.profile.max_call_depth
        seq = 0

        # Seed the heap so early loads can hit live objects.
        for _ in range(4):
            yield self._exec_alloc(seq)
            seq += 1

        while seq < self.length:
            # Drain any pending allocation memset first.
            if self._init_stores:
                yield self._exec_init_store(seq)
                seq += 1
                continue

            # Allocator events interleave at the profile's rate.
            if rng.chance(self._event_prob):
                if (len(self._live) >= self.max_live_objects
                        or (len(self._live) > 8 and rng.chance(0.5))):
                    yield self._exec_free(seq)
                else:
                    yield self._exec_alloc(seq)
                seq += 1
                continue

            # Function end: return (or restart at main's top).
            if self._slot >= len(self._func.slots):
                if self._call_stack:
                    yield self._exec_ret(seq)
                    seq += 1
                else:
                    self._slot = 0
                continue

            slot = self._func.slots[self._slot]
            kind = slot.kind
            # Loops re-execute bodies that often contain no call sites,
            # diluting the dynamic call rate below the profile's; when
            # that happens, borrow ALU slots for call/return events.
            if (kind == _ALU
                    and self._ctrl_events
                    < self.profile.frac_call * 2 * seq):
                kind = _CALL
            if kind == _CALL:
                # Call sites double as return sites so the dynamic
                # call/return rate tracks the profile even when loops
                # keep execution away from function ends.
                self._ctrl_events += 1
                if self._call_stack and (
                        len(self._call_stack) >= max_depth
                        or rng.chance(0.45)):
                    yield self._exec_ret(seq)
                elif slot.kind == _CALL:
                    yield self._exec_call(seq, slot)
                else:
                    # Borrowed ALU slot: call a hot function.
                    yield self._exec_borrowed_call(seq)
            elif kind == _LOAD:
                yield self._exec_load(seq, slot)
            elif kind == _STORE:
                yield self._exec_store(seq, slot)
            elif kind == _BRANCH:
                yield self._exec_branch(seq, slot)
            else:
                yield self._exec_alu(seq, kind)
            seq += 1

    def unwind_records(self, seq: int):
        """Yield returns closing every open frame, starting at ``seq``.

        The scenario compositor calls this at each phase boundary so a
        phase hands the next one a balanced call stack (the shadow
        stack kernel's ground truth never straddles a profile switch).
        """
        while self._call_stack:
            yield self._exec_ret(seq)
            seq += 1

    def final_meta(self) -> dict:
        """Generation metadata, valid once the record stream finished
        (keyword-compatible with :meth:`TraceWriter.finalize`)."""
        warm_lines = min(self._WARM_LINES, self._num_lines)
        return dict(
            objects=self._objects, heap_base=self._heap_base,
            heap_end=self._heap_cursor, global_base=GLOBAL_BASE,
            global_end=GLOBAL_BASE + self._num_lines * LINE_BYTES,
            warm_end=GLOBAL_BASE + warm_lines * LINE_BYTES)

    def generate(self) -> Trace:
        records = list(self.iter_records())
        return Trace(name=self.profile.name, seed=self.seed,
                     records=records, **self.final_meta())


def generate_trace(profile: WorkloadProfile, seed: int = 1,
                   length: int = 20000) -> Trace:
    """Convenience wrapper: one-call trace generation."""
    return TraceGenerator(profile, seed=seed, length=length).generate()
