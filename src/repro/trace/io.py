"""Trace serialisation: save and reload generated workloads.

Traces are deterministic given (profile, seed, length), but attack
injection mutates them and experiments may want to archive the exact
workload a result came from.  The format is a compact fixed-width
binary: a JSON header (name, seed, regions, heap objects) followed by
one 44-byte little-endian record per instruction.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.errors import TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.record import HeapObject, InstrRecord, Trace

MAGIC = b"FGTRACE1"
# pc, word, opcode, funct3, iclass, dst, nsrcs, srcs[2], mem_addr,
# mem_size, taken, target, result, attack_id
_RECORD = struct.Struct("<QIBBBbbBBQHBQQi")

_CLASS_BY_INDEX = tuple(InstrClass)
_INDEX_BY_CLASS = {c: i for i, c in enumerate(_CLASS_BY_INDEX)}

_NO_ADDR = (1 << 64) - 1


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace (records + metadata) to ``path``."""
    header = {
        "name": trace.name,
        "seed": trace.seed,
        "count": len(trace.records),
        "heap_base": trace.heap_base,
        "heap_end": trace.heap_end,
        "global_base": trace.global_base,
        "global_end": trace.global_end,
        "warm_end": trace.warm_end,
        "objects": [
            [o.base, o.size, o.alloc_seq,
             -1 if o.free_seq is None else o.free_seq]
            for o in trace.objects
        ],
    }
    header_bytes = json.dumps(header).encode()
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", len(header_bytes)))
        fh.write(header_bytes)
        for rec in trace.records:
            srcs = (rec.srcs + (0, 0))[:2]
            fh.write(_RECORD.pack(
                rec.pc, rec.word, rec.opcode, rec.funct3,
                _INDEX_BY_CLASS[rec.iclass],
                -1 if rec.dst is None else rec.dst,
                len(rec.srcs), srcs[0], srcs[1],
                _NO_ADDR if rec.mem_addr is None else rec.mem_addr,
                rec.mem_size, 1 if rec.taken else 0, rec.target,
                rec.result,
                -1 if rec.attack_id is None else rec.attack_id))


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceError(f"{path}: not a FireGuard trace file")
        (header_len,) = struct.unpack("<I", fh.read(4))
        header = json.loads(fh.read(header_len))
        records = []
        for seq in range(header["count"]):
            blob = fh.read(_RECORD.size)
            if len(blob) != _RECORD.size:
                raise TraceError(f"{path}: truncated at record {seq}")
            (pc, word, opcode, funct3, class_idx, dst, nsrcs, s0, s1,
             mem_addr, mem_size, taken, target, result,
             attack_id) = _RECORD.unpack(blob)
            records.append(InstrRecord(
                seq=seq, pc=pc, word=word, opcode=opcode, funct3=funct3,
                iclass=_CLASS_BY_INDEX[class_idx],
                dst=None if dst < 0 else dst,
                srcs=(s0, s1)[:nsrcs],
                mem_addr=None if mem_addr == _NO_ADDR else mem_addr,
                mem_size=mem_size, taken=bool(taken), target=target,
                result=result,
                attack_id=None if attack_id < 0 else attack_id))
    objects = [
        HeapObject(base=b, size=s, alloc_seq=a,
                   free_seq=None if f < 0 else f)
        for b, s, a, f in header["objects"]
    ]
    return Trace(
        name=header["name"], seed=header["seed"], records=records,
        objects=objects, heap_base=header["heap_base"],
        heap_end=header["heap_end"], global_base=header["global_base"],
        global_end=header["global_end"],
        warm_end=header.get("warm_end", 0))
