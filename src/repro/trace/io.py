"""Trace serialisation: save and reload generated workloads.

Traces are deterministic given (profile, seed, length), but attack
injection mutates them and experiments may want to archive the exact
workload a result came from.  The format is a compact fixed-width
binary: a JSON header (name, seed, regions, heap objects) followed by
one 44-byte little-endian record per instruction.

The format primitives live in :mod:`repro.trace.stream`, which also
provides chunked bounded-memory access to the same files
(:class:`~repro.trace.stream.TraceReader` /
:class:`~repro.trace.stream.TraceWriter`); this module keeps the
whole-trace convenience API.  Load errors name the failing record
index and file offset, so a truncated or corrupted archive points at
the damage instead of raising a bare struct error.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.trace.record import Trace
from repro.trace.stream import (
    MAGIC,
    NO_ADDR as _NO_ADDR,
    RECORD_STRUCT as _RECORD,
    TraceMeta,
    TraceReader,
    pack_record,
)

__all__ = ["MAGIC", "load_trace", "save_trace"]


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace (records + metadata) to ``path``."""
    header_bytes = TraceMeta.from_trace(trace).header_bytes()
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", len(header_bytes)))
        fh.write(header_bytes)
        for rec in trace.records:
            fh.write(pack_record(rec))


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace` (or by a
    :class:`~repro.trace.stream.TraceWriter`)."""
    return TraceReader(path).load()
