"""Columnar (structure-of-arrays) view of FGTRACE1 record batches.

The scalar codec in :mod:`repro.trace.stream` packs and unpacks one
44-byte record at a time through :data:`struct.Struct`.  This module
decodes whole chunks at once: :data:`RECORD_DTYPE` is a numpy
structured dtype laid out *bit-identically* to ``RECORD_STRUCT``, so a
chunk of file bytes becomes a structure-of-arrays
:class:`RecordColumns` with one ``np.frombuffer`` — zero copies, one
strided view per field.  The vectorized backend
(:mod:`repro.core.vector`) consumes these columns; the streaming
reader uses them to materialise :class:`InstrRecord` chunks via bulk
``tolist`` instead of per-record ``struct.unpack``.

Sentinel encodings are shared with the scalar codec and round-trip
losslessly (property-tested in ``tests/test_columns.py``):
``mem_addr is None`` ↔ ``NO_ADDR`` (all-ones), ``attack_id is None`` ↔
``-1``, ``dst is None`` ↔ ``-1``, and ``srcs`` ↔ ``(nsrcs, src0,
src1)``.

Everything here requires numpy; callers gate on
:data:`repro.utils.npcompat.HAVE_NUMPY` and fall back to the scalar
codec when it is absent.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.record import InstrRecord
from repro.utils.npcompat import np

#: Sentinel encoding for ``mem_addr is None`` (mirrors
#: :data:`repro.trace.stream.NO_ADDR`; duplicated here so the codec
#: layers have no import cycle).
NO_ADDR = (1 << 64) - 1

CLASS_BY_INDEX = tuple(InstrClass)
NUM_CLASSES = len(CLASS_BY_INDEX)

if np is not None:
    #: Structured dtype mirroring ``RECORD_STRUCT = "<QIBBBbbBBQHBQQi"``
    #: field for field: little-endian, packed, no padding.  The
    #: byte-level identity with the scalar codec is asserted by
    #: ``tests/test_columns.py``.
    RECORD_DTYPE = np.dtype([
        ("pc", "<u8"), ("word", "<u4"), ("opcode", "u1"),
        ("funct3", "u1"), ("iclass", "u1"), ("dst", "i1"),
        ("nsrcs", "i1"), ("src0", "u1"), ("src1", "u1"),
        ("mem_addr", "<u8"), ("mem_size", "<u2"), ("taken", "u1"),
        ("target", "<u8"), ("result", "<u8"), ("attack_id", "<i4"),
    ])
else:  # pragma: no cover - numpy-less installs never touch columns
    RECORD_DTYPE = None


class RecordColumns:
    """One chunk of records as parallel per-field arrays.

    ``start_seq`` is the trace-order sequence number of row 0; row
    ``i`` of every column describes record ``start_seq + i``.  The
    arrays are views over the chunk's file bytes (or over a packed
    buffer built from in-memory records) — treat them as read-only.
    """

    __slots__ = ("data", "start_seq")

    def __init__(self, data, start_seq: int = 0):
        self.data = data
        self.start_seq = start_seq

    def __len__(self) -> int:
        return len(self.data)

    # Field views (zero-copy strided slices of the chunk buffer).
    @property
    def pc(self):
        return self.data["pc"]

    @property
    def word(self):
        return self.data["word"]

    @property
    def opcode(self):
        return self.data["opcode"]

    @property
    def funct3(self):
        return self.data["funct3"]

    @property
    def iclass_code(self):
        """Index into :data:`CLASS_BY_INDEX` (the FGTRACE1 encoding of
        :class:`~repro.isa.opcodes.InstrClass`)."""
        return self.data["iclass"]

    @property
    def mem_addr(self):
        """Raw column: ``NO_ADDR`` encodes "no memory access"."""
        return self.data["mem_addr"]

    @property
    def mem_size(self):
        return self.data["mem_size"]

    @property
    def target(self):
        return self.data["target"]

    @property
    def result(self):
        return self.data["result"]

    @property
    def attack_id(self):
        """Raw column: ``-1`` encodes "not an attack record"."""
        return self.data["attack_id"]

    # -- codec ----------------------------------------------------------
    @classmethod
    def from_bytes(cls, blob: bytes | memoryview,
                   start_seq: int = 0) -> "RecordColumns":
        """Zero-copy decode of packed FGTRACE1 record bytes."""
        if np is None:
            raise TraceError("RecordColumns requires numpy")
        if len(blob) % RECORD_DTYPE.itemsize:
            raise TraceError(
                f"record buffer length {len(blob)} is not a multiple "
                f"of the {RECORD_DTYPE.itemsize}-byte record size")
        return cls(np.frombuffer(blob, dtype=RECORD_DTYPE), start_seq)

    @classmethod
    def from_records(cls, records: Iterable[InstrRecord],
                     start_seq: int = 0) -> "RecordColumns":
        """Pack in-memory records into columns.

        Goes through the scalar encoder so both paths share one source
        of truth for the byte layout (and the same range checks).
        """
        from repro.trace.stream import pack_record

        blob = b"".join(pack_record(rec) for rec in records)
        return cls.from_bytes(blob, start_seq)

    def to_bytes(self) -> bytes:
        """The packed FGTRACE1 bytes of this chunk (bit-identical to
        ``pack_record`` applied per row)."""
        return self.data.tobytes()

    def first_bad_class_index(self) -> int:
        """Row index of the first out-of-range instruction-class code,
        or ``-1`` when every row decodes (corruption diagnostics)."""
        bad = self.data["iclass"] >= NUM_CLASSES
        if bad.any():
            return int(bad.argmax())
        return -1

    def to_records(self) -> list[InstrRecord]:
        """Materialise :class:`InstrRecord` objects, bulk-converting
        each column once instead of unpacking per record.

        Raises :class:`TraceError` on an out-of-range class code (the
        scalar decoder's ``IndexError`` equivalent), naming the row.
        """
        bad = self.first_bad_class_index()
        if bad >= 0:
            code = int(self.data["iclass"][bad])
            raise TraceError(
                f"record {self.start_seq + bad}: instruction class "
                f"code {code} out of range (trace file corrupt?)")
        a = self.data
        pcs = a["pc"].tolist()
        words = a["word"].tolist()
        opcodes = a["opcode"].tolist()
        funct3s = a["funct3"].tolist()
        classes = a["iclass"].tolist()
        dsts = a["dst"].tolist()
        nsrcs = a["nsrcs"].tolist()
        src0s = a["src0"].tolist()
        src1s = a["src1"].tolist()
        addrs = a["mem_addr"].tolist()
        sizes = a["mem_size"].tolist()
        takens = a["taken"].tolist()
        targets = a["target"].tolist()
        results = a["result"].tolist()
        attack_ids = a["attack_id"].tolist()
        by_index = CLASS_BY_INDEX
        seq = self.start_seq
        records = []
        append = records.append
        for i in range(len(pcs)):
            dst = dsts[i]
            addr = addrs[i]
            attack = attack_ids[i]
            append(InstrRecord(
                seq=seq + i, pc=pcs[i], word=words[i],
                opcode=opcodes[i], funct3=funct3s[i],
                iclass=by_index[classes[i]],
                dst=None if dst < 0 else dst,
                srcs=(src0s[i], src1s[i])[:nsrcs[i]],
                mem_addr=None if addr == NO_ADDR else addr,
                mem_size=sizes[i], taken=bool(takens[i]),
                target=targets[i], result=results[i],
                attack_id=None if attack < 0 else attack))
        return records


def iter_trace_columns(trace, chunk_records: int = 4096,
                       ) -> Iterator[RecordColumns]:
    """Columns for any trace source.

    Uses the source's own ``iter_columns`` when it has one (streamed
    traces decode chunks straight off the file); otherwise packs the
    in-memory records chunk by chunk.
    """
    native = getattr(trace, "iter_columns", None)
    if native is not None:
        yield from native(chunk_records)
        return
    records = trace.record_view()
    for start in range(0, len(records), chunk_records):
        yield RecordColumns.from_records(
            records[start:start + chunk_records], start)
