"""Chunked streaming over the FGTRACE1 binary trace format.

The in-memory :class:`~repro.trace.record.Trace` caps both trace
length and scenario diversity: every record lives in RAM for the whole
run.  This module keeps the on-disk format of :mod:`repro.trace.io`
byte for byte — a JSON header followed by fixed-width records — but
reads and writes it in bounded-memory chunks, so generation, attack
injection (via :mod:`repro.trace.scenario`) and simulation never hold
more than one chunk of records at a time:

* :class:`TraceWriter` — ``append(record)`` streams records to a spool
  file; ``finalize()`` prepends the header (whose object table and
  count are only known at the end) with a chunked copy and returns the
  sha256 digest of the finished file;
* :class:`TraceReader` — parses the header once and ``__iter__``
  yields fixed-size lists of :class:`InstrRecord`; load errors name
  the failing record index and file offset;
* :class:`StreamedTrace` — the Trace-shaped adapter the simulator
  consumes: metadata attributes plus ``record_view()`` (sequential
  indexed access, one chunk resident) and ``iter_records()`` (a fresh
  full pass, used by the core's warm-up).

The record encoding is shared with :mod:`repro.trace.io`, so a trace
written by either path round-trips losslessly through the other,
including the ``attack_id = -1`` and ``_NO_ADDR`` sentinel encodings
for "no attack" and "no memory access".
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.record import HeapObject, InstrRecord, Trace
from repro.utils.npcompat import HAVE_NUMPY

MAGIC = b"FGTRACE1"
# pc, word, opcode, funct3, iclass, dst, nsrcs, srcs[2], mem_addr,
# mem_size, taken, target, result, attack_id
RECORD_STRUCT = struct.Struct("<QIBBBbbBBQHBQQi")
RECORD_BYTES = RECORD_STRUCT.size

_CLASS_BY_INDEX = tuple(InstrClass)
_INDEX_BY_CLASS = {c: i for i, c in enumerate(_CLASS_BY_INDEX)}

#: Sentinel encoding for ``mem_addr is None`` (no memory access).
NO_ADDR = (1 << 64) - 1

#: Records per chunk: 4096 × 44 B ≈ 180 KB of file bytes resident.
DEFAULT_CHUNK_RECORDS = 4096

_COPY_BYTES = 1 << 20


def pack_record(rec: InstrRecord) -> bytes:
    """One record in the FGTRACE1 fixed-width encoding."""
    srcs = (rec.srcs + (0, 0))[:2]
    return RECORD_STRUCT.pack(
        rec.pc, rec.word, rec.opcode, rec.funct3,
        _INDEX_BY_CLASS[rec.iclass],
        -1 if rec.dst is None else rec.dst,
        len(rec.srcs), srcs[0], srcs[1],
        NO_ADDR if rec.mem_addr is None else rec.mem_addr,
        rec.mem_size, 1 if rec.taken else 0, rec.target,
        rec.result,
        -1 if rec.attack_id is None else rec.attack_id)


def unpack_record(blob: bytes, seq: int) -> InstrRecord:
    """Decode one fixed-width record (inverse of :func:`pack_record`)."""
    (pc, word, opcode, funct3, class_idx, dst, nsrcs, s0, s1,
     mem_addr, mem_size, taken, target, result,
     attack_id) = RECORD_STRUCT.unpack(blob)
    return InstrRecord(
        seq=seq, pc=pc, word=word, opcode=opcode, funct3=funct3,
        iclass=_CLASS_BY_INDEX[class_idx],
        dst=None if dst < 0 else dst,
        srcs=(s0, s1)[:nsrcs],
        mem_addr=None if mem_addr == NO_ADDR else mem_addr,
        mem_size=mem_size, taken=bool(taken), target=target,
        result=result,
        attack_id=None if attack_id < 0 else attack_id)


@dataclass
class TraceMeta:
    """The FGTRACE1 header: everything about a trace except its records."""

    name: str
    seed: int
    count: int
    heap_base: int = 0
    heap_end: int = 0
    global_base: int = 0
    global_end: int = 0
    warm_end: int = 0
    objects: list[HeapObject] = field(default_factory=list)

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceMeta":
        return cls(name=trace.name, seed=trace.seed,
                   count=len(trace.records), heap_base=trace.heap_base,
                   heap_end=trace.heap_end, global_base=trace.global_base,
                   global_end=trace.global_end, warm_end=trace.warm_end,
                   objects=list(trace.objects))

    def header_bytes(self) -> bytes:
        """The JSON header, key order fixed so identical metadata always
        serialises to identical bytes (the digest contract)."""
        header = {
            "name": self.name,
            "seed": self.seed,
            "count": self.count,
            "heap_base": self.heap_base,
            "heap_end": self.heap_end,
            "global_base": self.global_base,
            "global_end": self.global_end,
            "warm_end": self.warm_end,
            "objects": [
                [o.base, o.size, o.alloc_seq,
                 -1 if o.free_seq is None else o.free_seq]
                for o in self.objects
            ],
        }
        return json.dumps(header).encode()


def parse_header(fh: IO[bytes], path: Path) -> tuple[TraceMeta, int]:
    """Read and validate the header; returns (meta, record data offset)."""
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceError(f"{path}: not a FireGuard trace file")
    length_blob = fh.read(4)
    if len(length_blob) != 4:
        raise TraceError(
            f"{path}: truncated header length field at file offset "
            f"{len(MAGIC)} (expected 4 bytes, found {len(length_blob)})")
    (header_len,) = struct.unpack("<I", length_blob)
    header_blob = fh.read(header_len)
    if len(header_blob) != header_len:
        raise TraceError(
            f"{path}: truncated header at file offset {len(MAGIC) + 4} "
            f"(expected {header_len} bytes, found {len(header_blob)})")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise TraceError(f"{path}: corrupt JSON header: {exc}") from exc
    try:
        objects = [
            HeapObject(base=b, size=s, alloc_seq=a,
                       free_seq=None if f < 0 else f)
            for b, s, a, f in header["objects"]
        ]
        meta = TraceMeta(
            name=header["name"], seed=header["seed"],
            count=header["count"], heap_base=header["heap_base"],
            heap_end=header["heap_end"],
            global_base=header["global_base"],
            global_end=header["global_end"],
            warm_end=header.get("warm_end", 0), objects=objects)
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(
            f"{path}: corrupt JSON header: missing or malformed "
            f"field ({exc!r})") from exc
    return meta, len(MAGIC) + 4 + header_len


def file_digest(path: str | Path) -> str:
    """sha256 of a file's full contents, read in bounded chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            blob = fh.read(_COPY_BYTES)
            if not blob:
                break
            digest.update(blob)
    return digest.hexdigest()


class TraceWriter:
    """Streams records into an FGTRACE1 file with bounded memory.

    Records go to a ``.part`` spool next to the target as they arrive;
    :meth:`finalize` (with the metadata only known once generation
    finished — object table, heap end, count) writes the header and
    splices the spooled records after it in bounded chunks.  The
    sha256 of the finished file is available as :attr:`digest` — the
    runner's content-addressed trace cache keys on it.

    Usable as a context manager: leaving the block without a
    ``finalize()`` discards the spool (aborted generation leaves no
    half-written trace behind).
    """

    def __init__(self, path: str | Path, name: str, seed: int):
        self.path = Path(path)
        self.name = name
        self.seed = seed
        self.count = 0
        self.digest: str | None = None
        self.meta: TraceMeta | None = None
        self._part = self.path.with_name(self.path.name + ".part")
        self._fh: IO[bytes] | None = open(self._part, "wb")

    def append(self, rec: InstrRecord) -> None:
        if self._fh is None:
            raise TraceError(f"{self.path}: writer already closed")
        self._fh.write(pack_record(rec))
        self.count += 1

    def extend(self, records: Iterable[InstrRecord]) -> None:
        for rec in records:
            self.append(rec)

    def finalize(self, objects: Iterable[HeapObject] = (),
                 heap_base: int = 0, heap_end: int = 0,
                 global_base: int = 0, global_end: int = 0,
                 warm_end: int = 0) -> str:
        """Write header + spooled records to the target; returns the
        sha256 digest of the finished file."""
        if self._fh is None:
            raise TraceError(f"{self.path}: writer already closed")
        self._fh.close()
        self._fh = None
        meta = TraceMeta(name=self.name, seed=self.seed, count=self.count,
                         heap_base=heap_base, heap_end=heap_end,
                         global_base=global_base, global_end=global_end,
                         warm_end=warm_end, objects=list(objects))
        header = meta.header_bytes()
        digest = hashlib.sha256()
        with open(self.path, "wb") as out, open(self._part, "rb") as spool:
            for blob in (MAGIC, struct.pack("<I", len(header)), header):
                out.write(blob)
                digest.update(blob)
            while True:
                blob = spool.read(_COPY_BYTES)
                if not blob:
                    break
                out.write(blob)
                digest.update(blob)
        os.unlink(self._part)
        self.meta = meta
        self.digest = digest.hexdigest()
        return self.digest

    def abort(self) -> None:
        """Discard the spool without producing a trace file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            os.unlink(self._part)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.abort()


class TraceReader:
    """Chunked reads over an FGTRACE1 file.

    The header is parsed once at construction (:attr:`meta`);
    ``__iter__`` starts a fresh pass yielding ``chunk_records``-sized
    lists of :class:`InstrRecord` (the last chunk may be short).  Load
    errors report the failing record index and absolute file offset,
    so a truncated or corrupted archive points at the damage.
    """

    def __init__(self, path: str | Path,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS):
        if chunk_records <= 0:
            raise TraceError(
                f"chunk_records must be positive, got {chunk_records}")
        self.path = Path(path)
        self.chunk_records = chunk_records
        with open(self.path, "rb") as fh:
            self.meta, self._data_offset = parse_header(fh, self.path)

    def __len__(self) -> int:
        return self.meta.count

    def __iter__(self) -> Iterator[list[InstrRecord]]:
        for blob, seq in self._iter_chunk_bytes():
            yield self._decode_chunk(blob, seq)

    def iter_columns(self, chunk_records: int | None = None):
        """A fresh pass yielding
        :class:`~repro.trace.columns.RecordColumns` per chunk — the
        batch-decoded structure-of-arrays view the vectorized backend
        consumes.  Requires numpy."""
        from repro.trace.columns import RecordColumns

        for blob, seq in self._iter_chunk_bytes(chunk_records):
            yield RecordColumns.from_bytes(blob, seq)

    def _iter_chunk_bytes(self, chunk_records: int | None = None,
                          ) -> Iterator[tuple[bytes, int]]:
        """Raw packed chunks with truncation diagnostics: yields
        ``(bytes, start_seq)`` per chunk."""
        count = self.meta.count
        per_chunk = chunk_records or self.chunk_records
        with open(self.path, "rb") as fh:
            fh.seek(self._data_offset)
            seq = 0
            while seq < count:
                want = min(per_chunk, count - seq)
                blob = fh.read(want * RECORD_BYTES)
                if len(blob) < want * RECORD_BYTES:
                    bad = seq + len(blob) // RECORD_BYTES
                    offset = self._data_offset + bad * RECORD_BYTES
                    found = len(blob) - (bad - seq) * RECORD_BYTES
                    raise TraceError(
                        f"{self.path}: truncated at record {bad} of "
                        f"{count} (file offset {offset}: expected "
                        f"{RECORD_BYTES} bytes, found {found})")
                yield blob, seq
                seq += want

    def _decode_chunk(self, blob: bytes, seq: int) -> list[InstrRecord]:
        """Materialise one chunk: columnar bulk decode when numpy is
        available, per-record ``struct.unpack`` otherwise.  Both paths
        produce field-identical records and the same corruption
        diagnostics (index + absolute file offset)."""
        count = self.meta.count
        if HAVE_NUMPY:
            from repro.trace.columns import RecordColumns

            columns = RecordColumns.from_bytes(blob, seq)
            bad = columns.first_bad_class_index()
            if bad >= 0:
                offset = self._data_offset + (seq + bad) * RECORD_BYTES
                code = int(columns.iclass_code[bad])
                raise TraceError(
                    f"{self.path}: corrupt record {seq + bad} of "
                    f"{count} (file offset {offset}): instruction "
                    f"class code {code} out of range")
            return columns.to_records()
        chunk = []
        for i in range(len(blob) // RECORD_BYTES):
            try:
                chunk.append(unpack_record(
                    blob[i * RECORD_BYTES:(i + 1) * RECORD_BYTES],
                    seq + i))
            except (struct.error, IndexError) as exc:
                offset = self._data_offset + (seq + i) * RECORD_BYTES
                raise TraceError(
                    f"{self.path}: corrupt record {seq + i} of "
                    f"{count} (file offset {offset}): {exc}"
                ) from exc
        return chunk

    def records(self) -> Iterator[InstrRecord]:
        """A fresh flat pass over all records."""
        for chunk in self:
            yield from chunk

    def load(self) -> Trace:
        """Materialise the whole file as an in-memory :class:`Trace`."""
        meta = self.meta
        records = [rec for chunk in self for rec in chunk]
        return Trace(
            name=meta.name, seed=meta.seed, records=records,
            objects=list(meta.objects), heap_base=meta.heap_base,
            heap_end=meta.heap_end, global_base=meta.global_base,
            global_end=meta.global_end, warm_end=meta.warm_end)


class _SequentialRecords:
    """Monotone indexed access over one reader pass.

    Implements the ``len()`` / ``view[i]`` protocol the main core's
    dispatch loop uses, holding only the chunk containing ``i``.  The
    core's dispatch index never moves backwards, so a passed chunk is
    dropped; an out-of-window backwards access raises.
    """

    __slots__ = ("_chunks", "_buf", "_start", "_count", "_path")

    def __init__(self, reader: TraceReader):
        self._chunks = iter(reader)
        self._buf: list[InstrRecord] = []
        self._start = 0
        self._count = reader.meta.count
        self._path = reader.path

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> InstrRecord:
        offset = index - self._start
        if offset < 0:
            raise TraceError(
                f"{self._path}: streamed trace is forward-only "
                f"(record {index} already passed, window starts at "
                f"{self._start})")
        while offset >= len(self._buf):
            self._start += len(self._buf)
            offset = index - self._start
            try:
                self._buf = next(self._chunks)
            except StopIteration:
                raise IndexError(index) from None
        return self._buf[offset]


class StreamedTrace:
    """A Trace-shaped view of an on-disk FGTRACE1 file.

    Exposes the metadata attributes the simulator reads (``name``,
    ``seed``, ``objects``, region bounds, ``len()``) plus the two
    record access paths :class:`~repro.ooo.core.MainCore` needs —
    ``iter_records()`` for the functional warm-up pass and
    ``record_view()`` for timed dispatch — each a fresh bounded-memory
    pass over the file.  One instance can back any number of runs
    (monitored, baseline, repeated), since every pass re-opens.
    """

    def __init__(self, path: str | Path,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 digest: str | None = None):
        self._reader = TraceReader(path, chunk_records=chunk_records)
        self.path = self._reader.path
        self.digest = digest
        meta = self._reader.meta
        self.name = meta.name
        self.seed = meta.seed
        self.objects = meta.objects
        self.heap_base = meta.heap_base
        self.heap_end = meta.heap_end
        self.global_base = meta.global_base
        self.global_end = meta.global_end
        self.warm_end = meta.warm_end

    def __len__(self) -> int:
        return self._reader.meta.count

    def iter_records(self) -> Iterator[InstrRecord]:
        return self._reader.records()

    def iter_columns(self, chunk_records: int | None = None):
        """A fresh bounded-memory pass yielding
        :class:`~repro.trace.columns.RecordColumns` per chunk (the
        columnar face of the trace-source protocol)."""
        return self._reader.iter_columns(chunk_records)

    def record_view(self) -> _SequentialRecords:
        return _SequentialRecords(self._reader)

    def load(self) -> Trace:
        return self._reader.load()


def stream_trace(profile, seed: int, length: int, path: str | Path,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 ) -> StreamedTrace:
    """Generate a single-profile workload straight to disk.

    Bit-identical records to
    :func:`~repro.trace.generator.generate_trace` (same generator state
    machine), but peak memory is one record at a time plus the heap
    ground-truth table, not the whole trace.
    """
    from repro.trace.generator import TraceGenerator

    gen = TraceGenerator(profile, seed=seed, length=length)
    with TraceWriter(path, name=profile.name, seed=seed) as writer:
        writer.extend(gen.iter_records())
        digest = writer.finalize(**gen.final_meta())
    return StreamedTrace(path, chunk_records=chunk_records, digest=digest)
