"""Attack injection (§IV-B).

The paper injects 50–100 erroneous inputs per workload — hijacked jump
targets, accesses to freed memory, out-of-bounds accesses — and
measures how long each guardian kernel takes to flag them.  The
injector mutates selected records of a generated trace the same way:
the *architectural* outcome changes (a return target, a memory
address), and the kernels must notice semantically.  Records are
tagged with an ``attack_id`` purely for measurement bookkeeping; the
kernels never see the tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import ConfigError, TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.record import Trace

HIJACK_BASE = 0x0000_00DE_AD00_0000
OUTSIDE_BOUNDS_BASE = 0x0000_F000_0000_0000

#: Where an injection clusters its sites within the eligible window.
#: ``spread`` keeps the paper's evenly-strided sampling; the other
#: values are the adversarial corners the campaign fuzzer probes:
#: ``early`` packs attacks right after the warm-up skip, ``late``
#: packs them against the end of the trace — for scenario phases that
#: is the phase boundary, where the compositor's balancing unwind
#: returns live — and ``gap`` (out-of-bounds only, otherwise a
#: synonym for ``late``) aims at the highest-addressed live object,
#: whose redzone abuts the inter-phase heap gap.
PLACEMENTS: tuple[str, ...] = ("spread", "early", "late", "gap")


class AttackKind(Enum):
    """One injection kind per guardian kernel."""

    RET_HIJACK = auto()     # shadow stack: return target != pushed address
    OOB_ACCESS = auto()     # AddressSanitizer: access in a redzone
    UAF_ACCESS = auto()     # UaF detector: access to quarantined region
    PMC_BOUND = auto()      # PMC bounds check: access outside fence


@dataclass(frozen=True)
class AttackPlan:
    """A declarative injection request: what to inject and how much.

    Hashable and picklable, so it rides inside
    :class:`~repro.runner.spec.RunSpec` fields and scenario phases.
    """

    kind: AttackKind
    count: int
    pmc_bounds: tuple[int, int] | None = None
    placement: str = "spread"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigError("attack count must be positive")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"available: {PLACEMENTS}")


@dataclass(frozen=True)
class AttackSite:
    """One injected attack: where it is and what it became."""

    attack_id: int
    seq: int
    kind: AttackKind
    detail: str = ""


#: Minimum candidate spacing for the packed placements.  Alert
#: attribution looks back ``MessageQueue.ATTRIBUTION_WINDOW`` (8)
#: pops, so two attack packets inside one window would both attribute
#: to the newer id and the older site would read as undetected.
_PACKED_STRIDE = 12


def _spaced_choices(candidates: list[int], count: int,
                    trace_len: int,
                    placement: str = "spread") -> list[int]:
    """Pick ``count`` candidate indices per the placement policy:
    evenly strided across the trace by default (so the latency sample
    is not clustered in one warm/cold phase), or packed against the
    start/end of the eligible window for the adversarial corners
    (packed sites still keep :data:`_PACKED_STRIDE` candidates of
    daylight so each stays individually attributable)."""
    if not candidates:
        return []
    if len(candidates) <= count:
        return list(candidates)
    if placement in ("early", "late", "gap"):
        stride = max(1, min(_PACKED_STRIDE,
                            len(candidates) // count))
        if placement == "early":
            return list(candidates[:count * stride:stride])
        start = len(candidates) - 1 - (count - 1) * stride
        return list(candidates[start::stride])[:count]
    stride = len(candidates) / count
    return [candidates[int(i * stride)] for i in range(count)]


def inject_attacks(trace: Trace, kind: AttackKind, count: int,
                   pmc_bounds: tuple[int, int] | None = None,
                   min_seq: int = 256,
                   placement: str = "spread") -> list[AttackSite]:
    """Mutate ``trace`` in place, injecting ``count`` attacks of ``kind``.

    Returns the attack sites (for latency attribution).  ``min_seq``
    skips the trace's warm-up prefix, like the paper's steady-state
    injection.  ``placement`` positions the sites within the eligible
    window (see :data:`PLACEMENTS`).  Records already claimed by an
    earlier injection are never re-used, so plans stacked on one trace
    keep disjoint sites and exact per-attack ground truth.
    """
    if count <= 0:
        raise TraceError(f"attack count must be positive, got {count}")
    if placement not in PLACEMENTS:
        raise TraceError(f"unknown placement {placement!r}; "
                         f"available: {PLACEMENTS}")
    records = trace.records

    if kind is AttackKind.RET_HIJACK:
        candidates = [i for i, r in enumerate(records)
                      if r.iclass is InstrClass.RET and r.seq >= min_seq
                      and r.attack_id is None]
        chosen = _spaced_choices(candidates, count, len(records),
                                 placement)
        sites = []
        for attack_id, idx in enumerate(chosen):
            rec = records[idx]
            rec.target = HIJACK_BASE + attack_id * 0x40
            rec.attack_id = attack_id
            sites.append(AttackSite(attack_id, rec.seq, kind,
                                    f"target={rec.target:#x}"))
        return sites

    if kind is AttackKind.OOB_ACCESS:
        return _inject_oob(trace, count, min_seq, placement)

    if kind is AttackKind.UAF_ACCESS:
        return _inject_uaf(trace, count, min_seq, placement)

    if kind is AttackKind.PMC_BOUND:
        if pmc_bounds is None:
            raise TraceError("PMC_BOUND injection needs pmc_bounds")
        lo, hi = pmc_bounds
        candidates = [i for i, r in enumerate(records)
                      if r.is_mem and r.seq >= min_seq
                      and r.attack_id is None]
        chosen = _spaced_choices(candidates, count, len(records),
                                 placement)
        sites = []
        for attack_id, idx in enumerate(chosen):
            rec = records[idx]
            rec.mem_addr = OUTSIDE_BOUNDS_BASE + attack_id * 0x1000
            assert not lo <= rec.mem_addr < hi
            rec.attack_id = attack_id
            sites.append(AttackSite(attack_id, rec.seq, kind,
                                    f"addr={rec.mem_addr:#x}"))
        return sites

    raise TraceError(f"unknown attack kind {kind!r}")


def _inject_oob(trace: Trace, count: int, min_seq: int,
                placement: str = "spread") -> list[AttackSite]:
    """Point loads/stores just past a live object's end (into the
    redzone the ASan kernel poisons around every allocation).  The
    ``gap`` placement always picks the highest-addressed live object,
    so the poked redzone is the one bordering the compositor's
    inter-phase heap gap."""
    records = trace.records
    candidates = []
    for i, rec in enumerate(records):
        if not rec.is_mem or rec.seq < min_seq \
                or rec.attack_id is not None:
            continue
        live = [o for o in trace.objects if o.live_at(rec.seq)]
        if live:
            candidates.append(i)
    chosen = _spaced_choices(candidates, count, len(records), placement)
    sites = []
    for attack_id, idx in enumerate(chosen):
        rec = records[idx]
        live = [o for o in trace.objects if o.live_at(rec.seq)]
        if placement == "gap":
            obj = max(live, key=lambda o: o.end)
        else:
            obj = live[attack_id % len(live)]
        rec.mem_addr = obj.end + 1  # inside the 16-byte right redzone
        rec.mem_size = 1
        rec.attack_id = attack_id
        sites.append(AttackSite(attack_id, rec.seq, AttackKind.OOB_ACCESS,
                                f"addr={rec.mem_addr:#x} obj={obj.base:#x}"))
    return sites


def _synthesize_frees(trace: Trace, needed: int, min_seq: int) -> None:
    """Plant free events for live objects so use-after-free scenarios
    exist even on allocation-light workloads.

    The paper injects erroneous *behaviour* (accessing freed memory);
    when the workload itself frees too rarely, the attack scenario
    includes the free: a suitable plain-ALU instruction becomes the
    ``custom0.f1`` allocator marker for a live object.
    """
    from repro.isa.decode import decode, encode_instr
    from repro.trace.record import HeapObject

    records = trace.records
    size = 256
    # Fresh addresses past the workload's heap: the planted objects are
    # never touched by legitimate accesses.
    next_base = ((trace.heap_end + 0xFFF) & ~0xFFF) + 0x10000

    alloc_word = encode_instr("custom0.f0", rs1=10, rs2=11)
    free_word = encode_instr("custom0.f1", rs1=10)
    alloc_dec = decode(alloc_word)
    free_dec = decode(free_word)

    def _convert(idx: int, word: int, dec, base: int) -> None:
        rec = records[idx]
        rec.word = word
        rec.opcode = dec.opcode
        rec.funct3 = dec.funct3
        rec.iclass = InstrClass.CUSTOM
        rec.dst = None
        rec.srcs = ()
        rec.mem_addr = base
        rec.mem_size = size
        rec.result = size

    # Room for the free, the ageing window, and the dangling load.
    horizon = len(records) - 1200
    alu = [i for i in range(min_seq, max(min_seq + 1, horizon))
           if records[i].attack_id is None
           and records[i].iclass is InstrClass.INT_ALU]
    planted = 0
    cursor = 0
    while planted < needed and cursor + 1 < len(alu):
        alloc_idx = alu[cursor]
        free_idx = next((i for i in alu[cursor + 1:]
                         if i >= alloc_idx + 32), None)
        if free_idx is None:
            break
        base = next_base
        next_base += size + 0x1000
        _convert(alloc_idx, alloc_word, alloc_dec, base)
        _convert(free_idx, free_word, free_dec, base)
        trace.objects.append(HeapObject(
            base=base, size=size, alloc_seq=records[alloc_idx].seq,
            free_seq=records[free_idx].seq))
        planted += 1
        # Spread the planted scenarios across the trace.
        cursor += max(2, len(alu) // max(1, needed))


def _inject_uaf(trace: Trace, count: int, min_seq: int,
                placement: str = "spread") -> list[AttackSite]:
    """Point loads at freed (quarantined) regions after their free.
    ``late`` placement favours the objects freed last, so the dangling
    access lands as close to the end of the trace — for scenario
    phases, the phase boundary — as the quarantine-ageing window
    allows."""
    records = trace.records
    freed = [o for o in trace.objects
             if o.free_seq is not None and o.free_seq >= min_seq]
    if len(freed) < count:
        _synthesize_frees(trace, count - len(freed), min_seq)
        freed = [o for o in trace.objects
                 if o.free_seq is not None and o.free_seq >= min_seq]
    if not freed:
        raise TraceError(
            "trace has no freed objects and none could be planted; "
            "increase the trace length")
    loads = [i for i, r in enumerate(records)
             if r.iclass is InstrClass.LOAD and r.attack_id is None]
    sites: list[AttackSite] = []
    freed.sort(key=lambda o: o.free_seq)
    # Only objects whose quarantine has a load left to age into are
    # placement candidates; ``late`` then lands on the *latest* free
    # the ageing window still allows, instead of dying on frees too
    # close to the trace end to ever be dereferenced.
    last_load_seq = records[loads[-1]].seq if loads else -1
    freed = [o for o in freed if o.free_seq + 1100 <= last_load_seq]
    if not freed:
        raise TraceError(
            "every freed object sits too close to the trace end for "
            "its quarantine to age; increase the trace length")
    freed_iter = _spaced_choices(list(range(len(freed))), count,
                                 len(freed), placement)
    for attack_id, fidx in enumerate(freed_iter):
        obj = freed[fidx]
        # First load comfortably after the free: quarantine poisoning
        # is deferred past the engines' in-flight window (the kernels'
        # FREE_DELAY_PACKETS ageing), so the dangling access must
        # trail the free by more than that window.
        target_idx = None
        for i in loads:
            if records[i].seq >= obj.free_seq + 1100:
                target_idx = i
                break
        if target_idx is None:
            continue
        rec = records[target_idx]
        rec.mem_addr = obj.base + (obj.size // 2) // 8 * 8
        rec.attack_id = attack_id
        loads.remove(target_idx)
        sites.append(AttackSite(attack_id, rec.seq, AttackKind.UAF_ACCESS,
                                f"addr={rec.mem_addr:#x} freed@{obj.free_seq}"))
    if not sites:
        raise TraceError("could not place any UaF attacks in the trace")
    return sites
