"""Attack injection (§IV-B).

The paper injects 50–100 erroneous inputs per workload — hijacked jump
targets, accesses to freed memory, out-of-bounds accesses — and
measures how long each guardian kernel takes to flag them.  The
injector mutates selected records of a generated trace the same way:
the *architectural* outcome changes (a return target, a memory
address), and the kernels must notice semantically.  Records are
tagged with an ``attack_id`` purely for measurement bookkeeping; the
kernels never see the tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import ConfigError, TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.record import Trace

HIJACK_BASE = 0x0000_00DE_AD00_0000
OUTSIDE_BOUNDS_BASE = 0x0000_F000_0000_0000


class AttackKind(Enum):
    """One injection kind per guardian kernel."""

    RET_HIJACK = auto()     # shadow stack: return target != pushed address
    OOB_ACCESS = auto()     # AddressSanitizer: access in a redzone
    UAF_ACCESS = auto()     # UaF detector: access to quarantined region
    PMC_BOUND = auto()      # PMC bounds check: access outside fence


@dataclass(frozen=True)
class AttackPlan:
    """A declarative injection request: what to inject and how much.

    Hashable and picklable, so it rides inside
    :class:`~repro.runner.spec.RunSpec` fields and scenario phases.
    """

    kind: AttackKind
    count: int
    pmc_bounds: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigError("attack count must be positive")


@dataclass(frozen=True)
class AttackSite:
    """One injected attack: where it is and what it became."""

    attack_id: int
    seq: int
    kind: AttackKind
    detail: str = ""


def _spaced_choices(candidates: list[int], count: int,
                    trace_len: int) -> list[int]:
    """Pick ``count`` candidate indices spread across the trace, so the
    latency sample is not clustered in one warm/cold phase."""
    if not candidates:
        return []
    if len(candidates) <= count:
        return list(candidates)
    stride = len(candidates) / count
    return [candidates[int(i * stride)] for i in range(count)]


def inject_attacks(trace: Trace, kind: AttackKind, count: int,
                   pmc_bounds: tuple[int, int] | None = None,
                   min_seq: int = 256) -> list[AttackSite]:
    """Mutate ``trace`` in place, injecting ``count`` attacks of ``kind``.

    Returns the attack sites (for latency attribution).  ``min_seq``
    skips the trace's warm-up prefix, like the paper's steady-state
    injection.
    """
    if count <= 0:
        raise TraceError(f"attack count must be positive, got {count}")
    records = trace.records

    if kind is AttackKind.RET_HIJACK:
        candidates = [i for i, r in enumerate(records)
                      if r.iclass is InstrClass.RET and r.seq >= min_seq]
        chosen = _spaced_choices(candidates, count, len(records))
        sites = []
        for attack_id, idx in enumerate(chosen):
            rec = records[idx]
            rec.target = HIJACK_BASE + attack_id * 0x40
            rec.attack_id = attack_id
            sites.append(AttackSite(attack_id, rec.seq, kind,
                                    f"target={rec.target:#x}"))
        return sites

    if kind is AttackKind.OOB_ACCESS:
        return _inject_oob(trace, count, min_seq)

    if kind is AttackKind.UAF_ACCESS:
        return _inject_uaf(trace, count, min_seq)

    if kind is AttackKind.PMC_BOUND:
        if pmc_bounds is None:
            raise TraceError("PMC_BOUND injection needs pmc_bounds")
        lo, hi = pmc_bounds
        candidates = [i for i, r in enumerate(records)
                      if r.is_mem and r.seq >= min_seq]
        chosen = _spaced_choices(candidates, count, len(records))
        sites = []
        for attack_id, idx in enumerate(chosen):
            rec = records[idx]
            rec.mem_addr = OUTSIDE_BOUNDS_BASE + attack_id * 0x1000
            assert not lo <= rec.mem_addr < hi
            rec.attack_id = attack_id
            sites.append(AttackSite(attack_id, rec.seq, kind,
                                    f"addr={rec.mem_addr:#x}"))
        return sites

    raise TraceError(f"unknown attack kind {kind!r}")


def _inject_oob(trace: Trace, count: int, min_seq: int) -> list[AttackSite]:
    """Point loads/stores just past a live object's end (into the
    redzone the ASan kernel poisons around every allocation)."""
    records = trace.records
    candidates = []
    for i, rec in enumerate(records):
        if not rec.is_mem or rec.seq < min_seq:
            continue
        live = [o for o in trace.objects if o.live_at(rec.seq)]
        if live:
            candidates.append(i)
    chosen = _spaced_choices(candidates, count, len(records))
    sites = []
    for attack_id, idx in enumerate(chosen):
        rec = records[idx]
        live = [o for o in trace.objects if o.live_at(rec.seq)]
        obj = live[attack_id % len(live)]
        rec.mem_addr = obj.end + 1  # inside the 16-byte right redzone
        rec.mem_size = 1
        rec.attack_id = attack_id
        sites.append(AttackSite(attack_id, rec.seq, AttackKind.OOB_ACCESS,
                                f"addr={rec.mem_addr:#x} obj={obj.base:#x}"))
    return sites


def _synthesize_frees(trace: Trace, needed: int, min_seq: int) -> None:
    """Plant free events for live objects so use-after-free scenarios
    exist even on allocation-light workloads.

    The paper injects erroneous *behaviour* (accessing freed memory);
    when the workload itself frees too rarely, the attack scenario
    includes the free: a suitable plain-ALU instruction becomes the
    ``custom0.f1`` allocator marker for a live object.
    """
    from repro.isa.decode import decode, encode_instr
    from repro.trace.record import HeapObject

    records = trace.records
    size = 256
    # Fresh addresses past the workload's heap: the planted objects are
    # never touched by legitimate accesses.
    next_base = ((trace.heap_end + 0xFFF) & ~0xFFF) + 0x10000

    alloc_word = encode_instr("custom0.f0", rs1=10, rs2=11)
    free_word = encode_instr("custom0.f1", rs1=10)
    alloc_dec = decode(alloc_word)
    free_dec = decode(free_word)

    def _convert(idx: int, word: int, dec, base: int) -> None:
        rec = records[idx]
        rec.word = word
        rec.opcode = dec.opcode
        rec.funct3 = dec.funct3
        rec.iclass = InstrClass.CUSTOM
        rec.dst = None
        rec.srcs = ()
        rec.mem_addr = base
        rec.mem_size = size
        rec.result = size

    # Room for the free, the ageing window, and the dangling load.
    horizon = len(records) - 1200
    alu = [i for i in range(min_seq, max(min_seq + 1, horizon))
           if records[i].attack_id is None
           and records[i].iclass is InstrClass.INT_ALU]
    planted = 0
    cursor = 0
    while planted < needed and cursor + 1 < len(alu):
        alloc_idx = alu[cursor]
        free_idx = next((i for i in alu[cursor + 1:]
                         if i >= alloc_idx + 32), None)
        if free_idx is None:
            break
        base = next_base
        next_base += size + 0x1000
        _convert(alloc_idx, alloc_word, alloc_dec, base)
        _convert(free_idx, free_word, free_dec, base)
        trace.objects.append(HeapObject(
            base=base, size=size, alloc_seq=records[alloc_idx].seq,
            free_seq=records[free_idx].seq))
        planted += 1
        # Spread the planted scenarios across the trace.
        cursor += max(2, len(alu) // max(1, needed))


def _inject_uaf(trace: Trace, count: int, min_seq: int) -> list[AttackSite]:
    """Point loads at freed (quarantined) regions after their free."""
    records = trace.records
    freed = [o for o in trace.objects
             if o.free_seq is not None and o.free_seq >= min_seq]
    if len(freed) < count:
        _synthesize_frees(trace, count - len(freed), min_seq)
        freed = [o for o in trace.objects
                 if o.free_seq is not None and o.free_seq >= min_seq]
    if not freed:
        raise TraceError(
            "trace has no freed objects and none could be planted; "
            "increase the trace length")
    loads = [i for i, r in enumerate(records)
             if r.iclass is InstrClass.LOAD]
    sites: list[AttackSite] = []
    freed_iter = _spaced_choices(list(range(len(freed))), count, len(freed))
    for attack_id, fidx in enumerate(freed_iter):
        obj = freed[fidx]
        # First load comfortably after the free: quarantine poisoning
        # is deferred past the engines' in-flight window (the kernels'
        # FREE_DELAY_PACKETS ageing), so the dangling access must
        # trail the free by more than that window.
        target_idx = None
        for i in loads:
            if records[i].seq >= obj.free_seq + 1100:
                target_idx = i
                break
        if target_idx is None:
            continue
        rec = records[target_idx]
        rec.mem_addr = obj.base + (obj.size // 2) // 8 * 8
        rec.attack_id = attack_id
        loads.remove(target_idx)
        sites.append(AttackSite(attack_id, rec.seq, AttackKind.UAF_ACCESS,
                                f"addr={rec.mem_addr:#x} freed@{obj.free_seq}"))
    if not sites:
        raise TraceError("could not place any UaF attacks in the trace")
    return sites
