"""Per-benchmark workload profiles.

The nine PARSEC benchmarks the paper evaluates, characterised by
instruction mix and memory behaviour.  Values are calibrated from the
published PARSEC characterisation (Bienia et al., PACT'08) and tuned so
the *relative* properties the paper's results depend on hold:

* x264 has the highest combined load+store fraction (its ASan/UaF
  monitoring traffic swamps four µcores — §IV-A, §IV-D);
* dedup is the most allocation-intensive (its UaF overhead stays flat
  with more µcores because per-free quarantine work does not
  parallelise — §IV-D);
* streamcluster streams a large working set (cache-miss heavy);
* swaptions/blackscholes are compute-heavy with few memory events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Instruction mix and memory behaviour of one benchmark.

    Fractions are of all dynamic instructions and must sum to < 1;
    the remainder is plain integer ALU work.
    """

    name: str
    frac_load: float
    frac_store: float
    frac_branch: float
    frac_call: float          # each call eventually pairs with a return
    frac_fp: float
    frac_mul: float = 0.01
    frac_div: float = 0.002
    alloc_per_kilo: float = 0.5   # allocation events per 1000 instructions
    mean_alloc_bytes: int = 256
    working_set_kb: int = 256
    locality_skew: float = 1.6    # zipf skew within the hot set
    hot_fraction: float = 0.92    # accesses hitting the cache-resident hot set
    branch_bias: float = 0.85     # fraction of strongly biased static branches
    dep_distance: float = 4.0     # mean producer-consumer distance (ILP)
    code_footprint_kb: int = 24
    max_call_depth: int = 24

    def __post_init__(self) -> None:
        total = (self.frac_load + self.frac_store + self.frac_branch
                 + self.frac_call * 2 + self.frac_fp + self.frac_mul
                 + self.frac_div)
        if total >= 1.0:
            raise ConfigError(
                f"profile {self.name}: fractions sum to {total:.3f} >= 1")
        for field_name in ("frac_load", "frac_store", "frac_branch",
                           "frac_call", "frac_fp", "frac_mul", "frac_div"):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"profile {self.name}: {field_name} < 0")
        if self.alloc_per_kilo < 0:
            raise ConfigError(f"profile {self.name}: negative alloc rate")

    @property
    def frac_mem(self) -> float:
        return self.frac_load + self.frac_store


PARSEC_PROFILES: dict[str, WorkloadProfile] = {
    "blackscholes": WorkloadProfile(
        name="blackscholes", frac_load=0.24, frac_store=0.07,
        frac_branch=0.09, frac_call=0.008, frac_fp=0.30,
        alloc_per_kilo=0.1, mean_alloc_bytes=512, working_set_kb=128,
        locality_skew=2.0, hot_fraction=0.985, branch_bias=0.95, dep_distance=5.0,
        code_footprint_kb=8),
    "bodytrack": WorkloadProfile(
        name="bodytrack", frac_load=0.29, frac_store=0.12,
        frac_branch=0.14, frac_call=0.018, frac_fp=0.12,
        alloc_per_kilo=1.2, mean_alloc_bytes=384, working_set_kb=512,
        locality_skew=1.5, hot_fraction=0.975, branch_bias=0.80, dep_distance=3.5,
        code_footprint_kb=40),
    "dedup": WorkloadProfile(
        name="dedup", frac_load=0.26, frac_store=0.14,
        frac_branch=0.12, frac_call=0.020, frac_fp=0.01,
        alloc_per_kilo=6.0, mean_alloc_bytes=1024, working_set_kb=1024,
        locality_skew=1.3, hot_fraction=0.965, branch_bias=0.78, dep_distance=3.0,
        code_footprint_kb=48),
    "ferret": WorkloadProfile(
        name="ferret", frac_load=0.28, frac_store=0.10,
        frac_branch=0.13, frac_call=0.016, frac_fp=0.15,
        alloc_per_kilo=1.8, mean_alloc_bytes=512, working_set_kb=768,
        locality_skew=1.5, hot_fraction=0.975, branch_bias=0.82, dep_distance=3.8,
        code_footprint_kb=56),
    "fluidanimate": WorkloadProfile(
        name="fluidanimate", frac_load=0.30, frac_store=0.13,
        frac_branch=0.11, frac_call=0.010, frac_fp=0.22,
        alloc_per_kilo=0.4, mean_alloc_bytes=2048, working_set_kb=640,
        locality_skew=1.6, hot_fraction=0.975, branch_bias=0.86, dep_distance=3.2,
        code_footprint_kb=24),
    "freqmine": WorkloadProfile(
        name="freqmine", frac_load=0.30, frac_store=0.11,
        frac_branch=0.15, frac_call=0.014, frac_fp=0.02,
        alloc_per_kilo=2.2, mean_alloc_bytes=256, working_set_kb=896,
        locality_skew=1.4, hot_fraction=0.975, branch_bias=0.80, dep_distance=3.0,
        code_footprint_kb=36),
    "streamcluster": WorkloadProfile(
        name="streamcluster", frac_load=0.33, frac_store=0.06,
        frac_branch=0.10, frac_call=0.006, frac_fp=0.26,
        alloc_per_kilo=0.3, mean_alloc_bytes=4096, working_set_kb=2048,
        locality_skew=1.1, hot_fraction=0.945, branch_bias=0.90, dep_distance=4.5,
        code_footprint_kb=12),
    "swaptions": WorkloadProfile(
        name="swaptions", frac_load=0.19, frac_store=0.07,
        frac_branch=0.12, frac_call=0.012, frac_fp=0.30,
        alloc_per_kilo=0.8, mean_alloc_bytes=192, working_set_kb=96,
        locality_skew=2.0, hot_fraction=0.98, branch_bias=0.90, dep_distance=4.0,
        code_footprint_kb=16),
    "x264": WorkloadProfile(
        name="x264", frac_load=0.36, frac_store=0.17,
        frac_branch=0.11, frac_call=0.012, frac_fp=0.04,
        alloc_per_kilo=1.0, mean_alloc_bytes=1536, working_set_kb=1536,
        locality_skew=1.4, hot_fraction=0.982, branch_bias=0.80, dep_distance=4.0,
        code_footprint_kb=64),
}

PARSEC_BENCHMARKS: tuple[str, ...] = tuple(PARSEC_PROFILES)
