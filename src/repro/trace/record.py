"""Trace records: the unit of work flowing through the simulator.

An :class:`InstrRecord` is one committed instruction with every field
the data-forwarding channel could extract: PC, encoded word, operand
and result data, memory address, and control-flow outcome.  Allocation
and free events appear as ``custom0`` instructions (the FireGuard
runtime instruments the allocator with them), carrying the region base
and size in the address/result fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import InstrClass


class InstrRecord:
    """One dynamic instruction.  Slotted: traces hold tens of thousands."""

    __slots__ = (
        "seq", "pc", "word", "opcode", "funct3", "iclass",
        "dst", "srcs", "mem_addr", "mem_size", "taken", "target",
        "result", "attack_id",
    )

    def __init__(self, seq: int, pc: int, word: int, opcode: int,
                 funct3: int, iclass: InstrClass, dst: int | None = None,
                 srcs: tuple[int, ...] = (), mem_addr: int | None = None,
                 mem_size: int = 0, taken: bool = False, target: int = 0,
                 result: int = 0, attack_id: int | None = None):
        self.seq = seq
        self.pc = pc
        self.word = word
        self.opcode = opcode
        self.funct3 = funct3
        self.iclass = iclass
        self.dst = dst
        self.srcs = srcs
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.taken = taken
        self.target = target
        self.result = result
        self.attack_id = attack_id

    @property
    def is_mem(self) -> bool:
        return self.iclass is InstrClass.LOAD or self.iclass is InstrClass.STORE

    @property
    def is_ctrl(self) -> bool:
        return self.iclass in (InstrClass.BRANCH, InstrClass.JUMP,
                               InstrClass.CALL, InstrClass.RET)

    def __repr__(self) -> str:
        return (f"InstrRecord(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.iclass.name}, word={self.word:#010x})")


@dataclass
class HeapObject:
    """A synthetic heap allocation tracked for attack injection and the
    UaF/ASan kernels' ground truth."""

    base: int
    size: int
    alloc_seq: int
    free_seq: int | None = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def live_at(self, seq: int) -> bool:
        if seq < self.alloc_seq:
            return False
        return self.free_seq is None or seq < self.free_seq


@dataclass
class Trace:
    """A generated workload: records plus generation metadata."""

    name: str
    seed: int
    records: list[InstrRecord]
    objects: list[HeapObject] = field(default_factory=list)
    heap_base: int = 0
    heap_end: int = 0
    global_base: int = 0
    global_end: int = 0
    # End of the structurally warm region: lines below this are part
    # of the workload's steady-state L2-resident set, which simulators
    # warm before timing (a short trace otherwise measures compulsory
    # misses).  0 disables warm-region warming.
    warm_end: int = 0

    def __len__(self) -> int:
        return len(self.records)

    # Trace-source protocol, shared with
    # :class:`~repro.trace.stream.StreamedTrace`: the simulator asks a
    # workload for a fresh full pass (warm-up) and a sequential indexed
    # view (dispatch) instead of touching ``records`` directly, so an
    # on-disk trace can serve both with bounded memory.
    def iter_records(self):
        """A fresh pass over all records."""
        return iter(self.records)

    def iter_columns(self, chunk_records: int = 4096):
        """Columnar chunks (:mod:`repro.trace.columns`) over the
        in-memory records — the same structure-of-arrays protocol a
        :class:`~repro.trace.stream.StreamedTrace` serves straight off
        the file.  Requires numpy; built fresh per call because records
        may be mutated between runs (attack injection)."""
        from repro.trace.columns import RecordColumns

        for start in range(0, len(self.records), chunk_records):
            yield RecordColumns.from_records(
                self.records[start:start + chunk_records], start)

    def record_view(self) -> list[InstrRecord]:
        """Sequential indexed access for the dispatch loop."""
        return self.records

    def class_counts(self) -> dict[InstrClass, int]:
        counts: dict[InstrClass, int] = {}
        for rec in self.records:
            counts[rec.iclass] = counts.get(rec.iclass, 0) + 1
        return counts

    def mem_fraction(self) -> float:
        if not self.records:
            return 0.0
        mem = sum(1 for r in self.records if r.is_mem)
        return mem / len(self.records)
