"""Seed-deterministic attack-campaign fuzzer (ROADMAP: scenario
diversity).

The paper spot-checks each guardian kernel on fixed workloads with
fixed injection mixes; this module generates an open-ended corpus
instead.  :func:`fuzz_corpus` expands a :class:`FuzzConfig` into
campaigns: each campaign draws a workload-family member
(:mod:`repro.trace.families`) and arms some of its phases with
randomized :class:`~repro.trace.attacks.AttackPlan` mixes — all four
:class:`~repro.trace.attacks.AttackKind`\\ s, including the
adversarial placements (``early``/``late``/``gap``) that park attacks
against phase boundaries, the compositor's balancing unwind returns,
and the redzones bordering the inter-phase heap gaps.  Every k-th
campaign is generated attack-free, the false-positive control.

Everything is derived from one :class:`~repro.utils.rng.
DeterministicRng` stream, so a seed fully determines the corpus: the
same :class:`FuzzConfig` produces scenarios with identical
:meth:`~repro.trace.scenario.Scenario.cache_token`\\ s, identical
composed traces, and therefore identical FGTRACE1 digests and
:class:`~repro.runner.spec.RunRecord`\\ s in any process under any
``PYTHONHASHSEED`` (pinned by ``tests/test_fuzz_properties.py``).

Coverage is guaranteed, not hoped for: campaign *i*'s primary attack
kind cycles through all four kinds and its family walks a Latin-square
schedule against that cycle, so a corpus of ``4 * len(families)``
campaigns exercises every (kind, family) pair at least once.
Secondary plans, counts, placements and profiles stay fuzzed.

Ground truth is exact, not estimated: :meth:`FuzzCase.ground_truth`
composes the scenario and returns the per-attack
:class:`~repro.trace.attacks.AttackSite` list — the oracle the
detection-coverage matrix (:mod:`repro.analysis.coverage`) joins
against executed detections.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import ConfigError
from repro.trace.attacks import AttackKind, AttackPlan, AttackSite
from repro.trace.families import (
    FAMILY_KINDS,
    FamilyConfig,
    make_family_scenario,
    resolve_family_profile,
)
from repro.trace.profiles import PARSEC_PROFILES, WorkloadProfile
from repro.trace.scenario import IDLE_PROFILE, Scenario, compose_trace
from repro.utils.rng import DeterministicRng

DEFAULT_FUZZ_SEED = 7

#: Campaign i's primary kind: the cycle that guarantees every kernel
#: is exercised every four campaigns.
KIND_ORDER: tuple[AttackKind, ...] = (
    AttackKind.RET_HIJACK,
    AttackKind.OOB_ACCESS,
    AttackKind.UAF_ACCESS,
    AttackKind.PMC_BOUND,
)

#: Placement draw for fuzzed plans: adversarial corners are weighted
#: equally with the paper's spread sampling.
_PLACEMENTS = ("spread", "early", "late")

#: A use-after-free plan needs the free, the ~1100-record quarantine
#: ageing gap and the dangling load inside one phase (see
#: Scenario._MIN_UAF_PHASE); armed phases are stretched to this floor.
UAF_PHASE_FLOOR = 2800

#: Profiles this allocation-light get no heap-shaped (OOB) plans —
#: there would be no live object to poke, so the plan would fuzz
#: nothing.
_MIN_OOB_ALLOC_RATE = 0.2


@dataclass(frozen=True)
class FuzzConfig:
    """The campaign generator's parameter vector.  Hashable, so a
    config can key caches; every field participates in generation and
    therefore in the corpus digest."""

    seed: int = DEFAULT_FUZZ_SEED
    campaigns: int = 8
    families: tuple[str, ...] = FAMILY_KINDS
    profiles: tuple[str, ...] = ("dedup", "swaptions", "x264",
                                 "ferret", IDLE_PROFILE.name)
    min_phase: int = 700
    max_phase: int = 1400
    min_phases: int = 2
    max_phases: int = 4
    max_plans: int = 2
    min_count: int = 2
    max_count: int = 4
    attack_free_every: int = 4

    def __post_init__(self) -> None:
        if not isinstance(self.families, tuple):
            object.__setattr__(self, "families", tuple(self.families))
        if not isinstance(self.profiles, tuple):
            object.__setattr__(self, "profiles", tuple(self.profiles))
        if self.campaigns < 1:
            raise ConfigError("fuzz config needs at least one campaign")
        for family in self.families:
            if family not in FAMILY_KINDS:
                raise ConfigError(
                    f"unknown family {family!r} in fuzz config; "
                    f"available: {sorted(FAMILY_KINDS)}")
        if not self.families:
            raise ConfigError("fuzz config needs at least one family")
        for profile in self.profiles:
            resolve_family_profile(profile)
        if len(self.profiles) < 2:
            raise ConfigError(
                "fuzz config needs at least two profiles (the "
                "oscillating/bursty families alternate two)")
        if not 400 <= self.min_phase <= self.max_phase:
            raise ConfigError(
                f"fuzz phase bounds invalid: [{self.min_phase}, "
                f"{self.max_phase}] (min 400)")
        if not 1 <= self.min_phases <= self.max_phases:
            raise ConfigError(
                f"fuzz phase-count bounds invalid: "
                f"[{self.min_phases}, {self.max_phases}]")
        if not 1 <= self.min_count <= self.max_count:
            raise ConfigError(
                f"fuzz attack-count bounds invalid: "
                f"[{self.min_count}, {self.max_count}]")
        if self.max_plans < 1:
            raise ConfigError("fuzz config needs max_plans >= 1")
        if self.attack_free_every < 0:
            raise ConfigError("attack_free_every must be >= 0 "
                              "(0 disables clean campaigns)")


@dataclass(frozen=True)
class FuzzCase:
    """One generated campaign: the scenario, the seed it composes
    under, and how it was drawn."""

    index: int
    family: str
    scenario: Scenario
    seed: int
    attack_free: bool

    def planned_kinds(self) -> frozenset[AttackKind]:
        """The attack kinds this campaign's plans request (the
        composed ground truth may fulfil fewer sites, never more
        kinds)."""
        return frozenset(plan.kind for phase in self.scenario.phases
                         for plan in phase.attacks)

    def ground_truth(self) -> tuple[AttackSite, ...]:
        """Exact per-attack ground truth: compose the scenario and
        return every injected site (id, composed seq, kind)."""
        _, sites = compose_trace(self.scenario, self.seed)
        return tuple(sites)


def _profile_alloc_rate(profile: str | WorkloadProfile) -> float:
    resolved = resolve_family_profile(profile)
    if isinstance(resolved, str):
        resolved = PARSEC_PROFILES[resolved]
    return resolved.alloc_per_kilo


def _draw_profiles(rng: DeterministicRng, config: FuzzConfig,
                   want: int) -> tuple[str, ...]:
    """``want`` distinct profile names, order-deterministic."""
    pool = list(config.profiles)
    chosen = []
    for _ in range(min(want, len(pool))):
        pick = pool[rng.randint(0, len(pool) - 1)]
        pool.remove(pick)
        chosen.append(pick)
    return tuple(chosen)


def _draw_plan(rng: DeterministicRng, config: FuzzConfig,
               kind: AttackKind) -> AttackPlan:
    placements = _PLACEMENTS + (("gap",)
                                if kind is AttackKind.OOB_ACCESS
                                else ())
    pmc_bounds = None
    if kind is AttackKind.PMC_BOUND:
        from repro.kernels.pmc import DEFAULT_BOUND_HI, DEFAULT_BOUND_LO

        pmc_bounds = (DEFAULT_BOUND_LO, DEFAULT_BOUND_HI)
    return AttackPlan(
        kind=kind,
        count=rng.randint(config.min_count, config.max_count),
        pmc_bounds=pmc_bounds,
        placement=placements[rng.randint(0, len(placements) - 1)])


def _suitable_kind(kind: AttackKind,
                   profile: str | WorkloadProfile) -> AttackKind:
    """Retarget heap-shaped plans away from allocation-starved
    profiles (there would be nothing to inject into)."""
    if kind is AttackKind.OOB_ACCESS \
            and _profile_alloc_rate(profile) < _MIN_OOB_ALLOC_RATE:
        return AttackKind.PMC_BOUND
    return kind


def _arm_phases(rng: DeterministicRng, config: FuzzConfig,
                scenario: Scenario, primary: AttackKind) -> Scenario:
    """Arm 1-2 phases of a clean family member with fuzzed plans; the
    first plan carries the campaign's primary kind, and its phase is
    drawn among those whose profile can host it (so the corpus's
    kind-coverage schedule survives allocation-starved profiles)."""
    phases = list(scenario.phases)
    armed_count = rng.randint(1, min(2, len(phases)))
    indices = list(range(len(phases)))
    first = True
    for _ in range(armed_count):
        pool = indices
        if first:
            suitable = [i for i in indices if _suitable_kind(
                primary, phases[i].profile) is primary]
            pool = suitable or indices
        pidx = pool[rng.randint(0, len(pool) - 1)]
        indices.remove(pidx)
        phase = phases[pidx]
        plans = []
        for _ in range(rng.randint(1, config.max_plans)):
            kind = primary if first else \
                KIND_ORDER[rng.randint(0, len(KIND_ORDER) - 1)]
            first = False
            kind = _suitable_kind(kind, phase.profile)
            plans.append(_draw_plan(rng, config, kind))
        length = phase.length
        if any(plan.kind is AttackKind.UAF_ACCESS for plan in plans):
            length = max(length, UAF_PHASE_FLOOR)
        phases[pidx] = replace(phase, attacks=tuple(plans),
                               length=length)
    return Scenario(name=scenario.name, phases=tuple(phases))


def fuzz_case(config: FuzzConfig, index: int) -> FuzzCase:
    """Generate campaign ``index`` of the corpus (campaigns are
    independent forks of the config seed, so any slice of the corpus
    can be regenerated without the rest)."""
    if not 0 <= index < config.campaigns:
        raise ConfigError(
            f"campaign index {index} outside the configured "
            f"{config.campaigns} campaigns")
    rng = DeterministicRng(config.seed).fork(index + 1)
    attack_free = bool(config.attack_free_every) and \
        index % config.attack_free_every == config.attack_free_every - 1
    # Latin-square schedule over the *armed* campaign ordinal: the
    # primary kind cycles with period 4 and the family walks against
    # it, so (kind, family) pairs cover the full product every
    # len(families)*4 armed campaigns.  Scheduling on the raw index
    # would alias the attack-free stride onto one kind slot and
    # silently starve that kernel of primaries.
    armed_index = index - (index // config.attack_free_every
                           if config.attack_free_every else 0)
    family = config.families[
        (armed_index + armed_index // len(KIND_ORDER))
        % len(config.families)]
    primary = KIND_ORDER[armed_index % len(KIND_ORDER)]
    want_profiles = 2 if family in ("oscillating", "bursty") \
        else 1 + rng.randint(0, 1)
    fam_config = FamilyConfig(
        family=family,
        profiles=_draw_profiles(rng, config, want_profiles),
        phases=rng.randint(config.min_phases, config.max_phases),
        phase_length=rng.randint(config.min_phase, config.max_phase),
        intensity=round(1.5 + rng.random() * 2.0, 2),
        label=f"fuzz-{config.seed}-{index:03d}-{family}")
    scenario = make_family_scenario(fam_config)
    if not attack_free:
        scenario = _arm_phases(rng, config, scenario, primary)
    compose_seed = rng.fork(0x5EED).next_u64() & 0x7FFF_FFFF
    return FuzzCase(index=index, family=family, scenario=scenario,
                    seed=compose_seed, attack_free=attack_free)


def iter_corpus(config: FuzzConfig) -> Iterator[FuzzCase]:
    for index in range(config.campaigns):
        yield fuzz_case(config, index)


def fuzz_corpus(config: FuzzConfig) -> tuple[FuzzCase, ...]:
    """The whole corpus for a config, deterministically."""
    return tuple(iter_corpus(config))


def corpus_digest(cases: tuple[FuzzCase, ...] | list[FuzzCase]) -> str:
    """A stable identity for a generated corpus: the sha256 of every
    scenario's cache token plus its compose seed.  Identical fuzz
    seeds must produce identical digests in any process — the
    seed-stability regression tests pin this."""
    payload = repr(tuple(
        (case.index, case.family, case.seed, case.attack_free,
         case.scenario.cache_token())
        for case in cases))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()
