"""Workload substrate: synthetic PARSEC-profile traces and attacks.

The paper runs PARSEC (simmedium) on Linux/FireSim.  Neither PARSEC nor
an FPGA exists here, so traces are generated synthetically from
per-benchmark instruction-mix profiles calibrated to published PARSEC
characterisation data (see DESIGN.md's substitution table).
"""

from repro.trace.attacks import (
    AttackKind,
    AttackPlan,
    AttackSite,
    inject_attacks,
)
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.profiles import (
    PARSEC_BENCHMARKS,
    PARSEC_PROFILES,
    WorkloadProfile,
)
from repro.trace.record import HeapObject, InstrRecord, Trace
from repro.trace.scenario import (
    SCENARIO_NAMES,
    SCENARIOS,
    Phase,
    Scenario,
    compose_stream,
    compose_trace,
    make_scenario,
    register_scenario,
)
from repro.trace.stream import (
    StreamedTrace,
    TraceReader,
    TraceWriter,
    file_digest,
    stream_trace,
)

__all__ = [
    "AttackKind",
    "AttackPlan",
    "AttackSite",
    "HeapObject",
    "InstrRecord",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "Phase",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "Scenario",
    "StreamedTrace",
    "Trace",
    "TraceGenerator",
    "TraceReader",
    "TraceWriter",
    "WorkloadProfile",
    "compose_stream",
    "compose_trace",
    "file_digest",
    "generate_trace",
    "inject_attacks",
    "make_scenario",
    "register_scenario",
    "stream_trace",
]
