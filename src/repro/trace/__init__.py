"""Workload substrate: synthetic PARSEC-profile traces and attacks.

The paper runs PARSEC (simmedium) on Linux/FireSim.  Neither PARSEC nor
an FPGA exists here, so traces are generated synthetically from
per-benchmark instruction-mix profiles calibrated to published PARSEC
characterisation data (see DESIGN.md's substitution table).
"""

from repro.trace.attacks import (
    PLACEMENTS,
    AttackKind,
    AttackPlan,
    AttackSite,
    inject_attacks,
)
from repro.trace.families import (
    FAMILIES,
    FAMILY_KINDS,
    FAMILY_LIBRARY,
    FAMILY_SCENARIO_NAMES,
    FamilyConfig,
    make_family_scenario,
)
from repro.trace.fuzz import (
    DEFAULT_FUZZ_SEED,
    FuzzCase,
    FuzzConfig,
    corpus_digest,
    fuzz_case,
    fuzz_corpus,
    iter_corpus,
)
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.profiles import (
    PARSEC_BENCHMARKS,
    PARSEC_PROFILES,
    WorkloadProfile,
)
from repro.trace.record import HeapObject, InstrRecord, Trace
from repro.trace.scenario import (
    SCENARIO_NAMES,
    SCENARIOS,
    Phase,
    Scenario,
    compose_stream,
    compose_trace,
    make_scenario,
    register_scenario,
)
from repro.trace.stream import (
    StreamedTrace,
    TraceReader,
    TraceWriter,
    file_digest,
    stream_trace,
)

__all__ = [
    "AttackKind",
    "AttackPlan",
    "AttackSite",
    "DEFAULT_FUZZ_SEED",
    "FAMILIES",
    "FAMILY_KINDS",
    "FAMILY_LIBRARY",
    "FAMILY_SCENARIO_NAMES",
    "FamilyConfig",
    "FuzzCase",
    "FuzzConfig",
    "HeapObject",
    "InstrRecord",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "PLACEMENTS",
    "Phase",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "Scenario",
    "StreamedTrace",
    "Trace",
    "TraceGenerator",
    "TraceReader",
    "TraceWriter",
    "WorkloadProfile",
    "compose_stream",
    "compose_trace",
    "corpus_digest",
    "file_digest",
    "fuzz_case",
    "fuzz_corpus",
    "generate_trace",
    "inject_attacks",
    "iter_corpus",
    "make_family_scenario",
    "make_scenario",
    "register_scenario",
    "stream_trace",
]
