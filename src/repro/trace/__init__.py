"""Workload substrate: synthetic PARSEC-profile traces and attacks.

The paper runs PARSEC (simmedium) on Linux/FireSim.  Neither PARSEC nor
an FPGA exists here, so traces are generated synthetically from
per-benchmark instruction-mix profiles calibrated to published PARSEC
characterisation data (see DESIGN.md's substitution table).
"""

from repro.trace.attacks import AttackKind, AttackSite, inject_attacks
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.profiles import (
    PARSEC_BENCHMARKS,
    PARSEC_PROFILES,
    WorkloadProfile,
)
from repro.trace.record import HeapObject, InstrRecord, Trace

__all__ = [
    "AttackKind",
    "AttackSite",
    "HeapObject",
    "InstrRecord",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "Trace",
    "TraceGenerator",
    "WorkloadProfile",
    "generate_trace",
    "inject_attacks",
]
