"""Parameterized workload families (ROADMAP: scenario diversity).

The scenario library holds a handful of hand-written compositions; a
*family* is a small declarative config that expands into arbitrarily
many of them.  Each family fixes a phase-mix *shape* — how workload
intensity evolves over the composition — and :class:`FamilyConfig`
parameterizes it over the PARSEC profiles, phase counts, lengths and
an intensity knob:

``static``
    Homogeneous steady state: ``phases`` equal-length phases cycling
    through the configured profiles (one profile = the paper's
    fixed-shape workloads, reproduced by composition).
``ramp``
    Monotone load ramp: phase lengths grow linearly from
    ``phase_length`` to ``intensity * phase_length`` — the boot-up /
    warm-up trajectory of a service taking traffic.
``oscillating``
    Profiles alternate at constant length (A-B-A-B…): the diurnal
    serve/batch alternation.  Needs at least two profiles.
``bursty``
    A base profile interrupted by short bursts of the last configured
    profile: even phases run ``phase_length`` of the base, odd phases
    ``phase_length / intensity`` of the burst profile.

Families expand through the existing :class:`~repro.trace.scenario.
Phase` machinery, so everything the compositor guarantees (disjoint
heaps, balanced call stacks at boundaries, continuous sequence and
attack ids) holds for every family member, and a member rides in a
:class:`~repro.runner.spec.RunSpec` like any other scenario —
inline, or by name once registered.

A default library member per family is registered into
:data:`~repro.trace.scenario.SCENARIOS` at import
(:data:`FAMILY_SCENARIO_NAMES`); the campaign fuzzer in
:mod:`repro.trace.fuzz` draws fresh members instead of reusing these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import ConfigError
from repro.trace.attacks import AttackPlan
from repro.trace.profiles import PARSEC_PROFILES, WorkloadProfile
from repro.trace.scenario import (
    IDLE_PROFILE,
    Phase,
    Scenario,
    register_scenario,
)

#: The smallest phase a family will emit (room for warm-up + attacks).
MIN_PHASE_LENGTH = 400


def resolve_family_profile(profile: str | WorkloadProfile,
                           ) -> str | WorkloadProfile:
    """Family profiles are PARSEC names, the special ``idle-poll``
    pseudo-benchmark, or explicit :class:`WorkloadProfile` instances
    (the form :class:`Phase` accepts)."""
    if isinstance(profile, WorkloadProfile):
        return profile
    if profile == IDLE_PROFILE.name:
        return IDLE_PROFILE
    if profile in PARSEC_PROFILES:
        return profile
    raise ConfigError(
        f"unknown family profile {profile!r}; available: "
        f"{sorted(PARSEC_PROFILES)} + [{IDLE_PROFILE.name!r}]")


def _profile_label(profile: str | WorkloadProfile) -> str:
    return profile if isinstance(profile, str) else profile.name


@dataclass(frozen=True)
class FamilyConfig:
    """One family member, declaratively: the family shape plus the
    small parameter vector that expands it.

    ``attacks`` arms one phase (``attack_phase``, defaulting to the
    longest) with an attack mix; the default library members are
    registered clean and armed per-use via
    :meth:`~repro.trace.scenario.Scenario.with_attacks` or the fuzzer.
    """

    family: str
    profiles: tuple[str | WorkloadProfile, ...]
    phases: int = 4
    phase_length: int = 1600
    intensity: float = 2.0
    attacks: tuple[AttackPlan, ...] = ()
    attack_phase: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.profiles, tuple):
            object.__setattr__(self, "profiles", tuple(self.profiles))
        if not isinstance(self.attacks, tuple):
            object.__setattr__(self, "attacks", tuple(self.attacks))
        if self.family not in FAMILIES:
            raise ConfigError(
                f"unknown workload family {self.family!r}; "
                f"available: {sorted(FAMILIES)}")
        if not self.profiles:
            raise ConfigError("family needs at least one profile")
        for profile in self.profiles:
            resolve_family_profile(profile)
        if self.phases < 1:
            raise ConfigError(
                f"family needs at least one phase, got {self.phases}")
        if self.phase_length < MIN_PHASE_LENGTH:
            raise ConfigError(
                f"family phase_length must be >= {MIN_PHASE_LENGTH}, "
                f"got {self.phase_length}")
        if self.intensity < 1.0:
            raise ConfigError(
                f"family intensity must be >= 1.0, got "
                f"{self.intensity}")
        if self.family in ("oscillating", "bursty") \
                and len(self.profiles) < 2:
            raise ConfigError(
                f"{self.family} family needs two profiles "
                f"(base and alternate)")
        if self.attack_phase is not None and not (
                0 <= self.attack_phase < self.phases):
            raise ConfigError(
                f"attack_phase {self.attack_phase} outside the "
                f"family's {self.phases} phases")

    def name(self) -> str:
        """Deterministic scenario name for this member."""
        if self.label:
            return self.label
        profiles = "+".join(_profile_label(p) for p in self.profiles)
        return (f"fam-{self.family}-{profiles}"
                f"-n{self.phases}-l{self.phase_length}"
                f"-i{self.intensity:g}")


def _cycled(config: FamilyConfig, index: int) -> str | WorkloadProfile:
    return resolve_family_profile(
        config.profiles[index % len(config.profiles)])


def _static_phases(config: FamilyConfig) -> list[Phase]:
    return [Phase(_cycled(config, i), config.phase_length,
                  label=f"static{i}")
            for i in range(config.phases)]


def _ramp_phases(config: FamilyConfig) -> list[Phase]:
    steps = max(1, config.phases - 1)
    phases = []
    for i in range(config.phases):
        scale = 1.0 + (config.intensity - 1.0) * i / steps
        length = max(MIN_PHASE_LENGTH,
                     round(config.phase_length * scale))
        phases.append(Phase(_cycled(config, i), length,
                            label=f"ramp{i}"))
    return phases


def _oscillating_phases(config: FamilyConfig) -> list[Phase]:
    return [Phase(_cycled(config, i), config.phase_length,
                  label=f"osc{i}")
            for i in range(config.phases)]


def _bursty_phases(config: FamilyConfig) -> list[Phase]:
    base = resolve_family_profile(config.profiles[0])
    burst = resolve_family_profile(config.profiles[-1])
    burst_length = max(MIN_PHASE_LENGTH,
                       round(config.phase_length / config.intensity))
    phases = []
    for i in range(config.phases):
        if i % 2:
            phases.append(Phase(burst, burst_length,
                                label=f"burst{i}"))
        else:
            phases.append(Phase(base, config.phase_length,
                                label=f"base{i}"))
    return phases


FAMILIES: dict[str, Callable[[FamilyConfig], list[Phase]]] = {
    "static": _static_phases,
    "ramp": _ramp_phases,
    "oscillating": _oscillating_phases,
    "bursty": _bursty_phases,
}

FAMILY_KINDS: tuple[str, ...] = tuple(FAMILIES)


def make_family_scenario(config: FamilyConfig) -> Scenario:
    """Expand one family config into a :class:`Scenario` (unregistered
    — the caller owns the name)."""
    phases = FAMILIES[config.family](config)
    if config.attacks:
        index = config.attack_phase
        if index is None:
            index = max(range(len(phases)),
                        key=lambda i: phases[i].length)
        phases[index] = replace(phases[index], attacks=config.attacks)
    return Scenario(name=config.name(), phases=tuple(phases))


#: The default library member per family, registered by name so
#: harnesses can reference them like the hand-written scenarios.
FAMILY_LIBRARY: tuple[FamilyConfig, ...] = (
    FamilyConfig("static", ("x264",), phases=3, phase_length=2400,
                 label="fam-static-x264"),
    FamilyConfig("ramp", ("dedup",), phases=4, phase_length=1200,
                 intensity=3.0, label="fam-ramp-dedup"),
    FamilyConfig("oscillating", ("swaptions", "x264"), phases=4,
                 phase_length=1800, label="fam-osc-swaptions-x264"),
    FamilyConfig("bursty", ("ferret", IDLE_PROFILE.name), phases=5,
                 phase_length=1800, intensity=3.0,
                 label="fam-burst-ferret-idle"),
)

FAMILY_SCENARIO_NAMES: tuple[str, ...] = tuple(
    register_scenario(make_family_scenario(config)).name
    for config in FAMILY_LIBRARY)
