"""Clock-domain bookkeeping.

FireGuard splits the design into a high-frequency domain (main core,
data-forwarding channel, filter, allocator — 3.2 GHz in Table II) and a
low-frequency domain (fabric network and µcores — 1.6 GHz).  The
simulator steps the high domain every cycle and fires the low domain on
the cycles where its (slower) edge lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with helpers to convert cycles to wall time."""

    name: str
    freq_ghz: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigError(f"clock {self.name}: frequency must be positive")

    @property
    def period_ns(self) -> float:
        return 1.0 / self.freq_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> int:
        """Whole cycles needed to cover ``ns`` (ceiling)."""
        cycles = ns * self.freq_ghz
        whole = int(cycles)
        return whole if whole == cycles else whole + 1


class DualDomainClock:
    """Steps a fast domain cycle-by-cycle and reports slow-domain edges.

    The slow edge schedule is computed with an accumulator so arbitrary
    (non-integer) frequency ratios work; with the paper's 3.2/1.6 GHz
    pair the slow domain simply ticks every second fast cycle.
    """

    def __init__(self, fast: ClockDomain, slow: ClockDomain):
        if slow.freq_ghz > fast.freq_ghz:
            raise ConfigError(
                f"slow domain {slow.name} ({slow.freq_ghz} GHz) is faster "
                f"than fast domain {fast.name} ({fast.freq_ghz} GHz)"
            )
        self.fast = fast
        self.slow = slow
        self.fast_cycle = 0
        self.slow_cycle = 0
        self._ratio = slow.freq_ghz / fast.freq_ghz
        self._accum = 0.0

    def tick(self) -> bool:
        """Advance one fast cycle; return True if the slow domain also
        ticks on this fast cycle."""
        self.fast_cycle += 1
        self._accum += self._ratio
        if self._accum >= 1.0:
            self._accum -= 1.0
            self.slow_cycle += 1
            return True
        return False

    @property
    def time_ns(self) -> float:
        return self.fast.cycles_to_ns(self.fast_cycle)

    def slow_time_ns(self) -> float:
        return self.slow.cycles_to_ns(self.slow_cycle)
