"""Clock-domain bookkeeping.

FireGuard splits the design into a high-frequency domain (main core,
data-forwarding channel, filter, allocator — 3.2 GHz in Table II) and a
low-frequency domain (fabric network and µcores — 1.6 GHz).  The
simulator steps the high domain every cycle and fires the low domain on
the cycles where its (slower) edge lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with helpers to convert cycles to wall time."""

    name: str
    freq_ghz: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigError(f"clock {self.name}: frequency must be positive")

    @property
    def period_ns(self) -> float:
        return 1.0 / self.freq_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> int:
        """Whole cycles needed to cover ``ns`` (ceiling)."""
        cycles = ns * self.freq_ghz
        whole = int(cycles)
        return whole if whole == cycles else whole + 1


class DualDomainClock:
    """Steps a fast domain cycle-by-cycle and reports slow-domain edges.

    The slow edge schedule is computed with an accumulator so arbitrary
    (non-integer) frequency ratios work; with the paper's 3.2/1.6 GHz
    pair the slow domain simply ticks every second fast cycle.
    """

    def __init__(self, fast: ClockDomain, slow: ClockDomain):
        if slow.freq_ghz > fast.freq_ghz:
            raise ConfigError(
                f"slow domain {slow.name} ({slow.freq_ghz} GHz) is faster "
                f"than fast domain {fast.name} ({fast.freq_ghz} GHz)"
            )
        self.fast = fast
        self.slow = slow
        self.fast_cycle = 0
        self.slow_cycle = 0
        self._ratio = slow.freq_ghz / fast.freq_ghz
        self._accum = 0.0
        # accumulator value -> (fast, slow) stride proven to return the
        # accumulator exactly to that value (see _periodic_stride).
        # Bounded: a periodic orbit holds at most _STRIDE_SEARCH_LIMIT
        # distinct values, and one failed search proves the whole orbit
        # aperiodic (the flag short-circuits all further searches).
        self._stride_cache: dict[float, tuple[int, int]] = {}
        self._stride_search_failed = False

    def tick(self) -> bool:
        """Advance one fast cycle; return True if the slow domain also
        ticks on this fast cycle."""
        self.fast_cycle += 1
        self._accum += self._ratio
        if self._accum >= 1.0:
            self._accum -= 1.0
            self.slow_cycle += 1
            return True
        return False

    # -- fast-forward ------------------------------------------------------
    _STRIDE_SEARCH_LIMIT = 64

    def _periodic_stride(self) -> tuple[int, int] | None:
        """A ``(fast_ticks, slow_ticks)`` stride after which the edge
        accumulator provably returns to exactly its current value.

        The search simulates up to ``_STRIDE_SEARCH_LIMIT`` ticks with
        the same floating-point operations ``tick`` performs; if the
        accumulator revisits its start value, every multiple of the
        stride reproduces the tick-by-tick state bit for bit, so whole
        strides can be jumped arithmetically.  Irrational-looking
        ratios that never revisit the value within the limit simply
        fall back to per-tick advancing.
        """
        if self._stride_search_failed:
            return None
        accum = self._accum
        cached = self._stride_cache.get(accum)
        if cached is not None:
            return cached
        a = accum
        slow_ticks = 0
        for fast_ticks in range(1, self._STRIDE_SEARCH_LIMIT + 1):
            a += self._ratio
            if a >= 1.0:
                a -= 1.0
                slow_ticks += 1
            if a == accum and slow_ticks > 0:
                stride = (fast_ticks, slow_ticks)
                self._stride_cache[accum] = stride
                return stride
        # No short cycle from here: treat the clock as aperiodic and
        # fall back to per-tick advancing for good — searching again
        # from every future accumulator value would cost more than it
        # could save and grow the cache without bound.
        self._stride_search_failed = True
        return None

    def advance_to(self, stop_fast: int, stop_slow: int | None = None) -> bool:
        """Advance as if :meth:`tick` were called repeatedly, stopping
        as soon as ``fast_cycle`` reaches ``stop_fast`` or a tick lands
        a slow edge with ``slow_cycle == stop_slow`` (whichever comes
        first).  Returns True when stopped on that slow edge.

        The state after ``advance_to`` is bit-identical to the
        equivalent ``tick()`` sequence: whole periodic strides are
        jumped only when the accumulator provably repeats, and the
        remainder is ticked out one cycle at a time.
        """
        while self.fast_cycle < stop_fast:
            stride = self._periodic_stride()
            if stride is not None:
                fast_ticks, slow_ticks = stride
                periods = (stop_fast - self.fast_cycle) // fast_ticks
                if stop_slow is not None and stop_slow > self.slow_cycle:
                    # Never jump over (or onto) the stop edge.
                    periods = min(
                        periods,
                        (stop_slow - 1 - self.slow_cycle) // slow_ticks)
                if periods > 0:
                    self.fast_cycle += periods * fast_ticks
                    self.slow_cycle += periods * slow_ticks
                    continue
            edge = self.tick()
            if edge and self.slow_cycle == stop_slow:
                return True
        return False

    @property
    def time_ns(self) -> float:
        return self.fast.cycles_to_ns(self.fast_cycle)

    def slow_time_ns(self) -> float:
        return self.slow.cycles_to_ns(self.slow_cycle)
