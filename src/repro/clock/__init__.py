"""Clock domains (§III footnote 2: high-frequency core domain,
low-frequency fabric/µcore domain, handshake CDC between them)."""

from repro.clock.domain import ClockDomain, DualDomainClock

__all__ = ["ClockDomain", "DualDomainClock"]
