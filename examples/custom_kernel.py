#!/usr/bin/env python3
"""Write your own guardian kernel.

FireGuard's point is programmability: new checks are software.  This
example implements a *watchpoint* kernel from scratch — it monitors
all stores and alerts when any store hits a guarded address range
(think: a hardware data breakpoint over an arbitrary region, always
on).  The kernel is ~15 lines of µcore assembly.
"""

from repro.core.scheduling import SchedulingPolicy
from repro.core.system import FireGuardSystem, run_baseline
from repro.kernels import GROUP_MEM
from repro.kernels.base import GuardianKernel
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

# Guard the first 4 KB of the workload's global data region.
GUARD_LO = 0x0000_0001_0000_0000
GUARD_HI = GUARD_LO + 0x1000


class WatchpointKernel(GuardianKernel):
    """Alert on any store into [s1, s2)."""

    name = "watchpoint"
    groups = (GROUP_MEM,)
    policy = SchedulingPolicy.ROUND_ROBIN

    def preset_registers(self, engine_id, engine_ids, position):
        regs = super().preset_registers(engine_id, engine_ids, position)
        regs[9] = GUARD_LO    # s1
        regs[18] = GUARD_HI   # s2
        return regs

    def program_source(self) -> str:
        return """
# Watchpoint: alert on stores into the guarded range [s1, s2).
loop:
    qpop    a0, 0            # metadata word
    andi    t0, a0, 2        # store flag (bit 1)
    beqz    t0, loop
    qrecent a1, 128          # store address
    bltu    a1, s1, loop
    bgeu    a1, s2, loop
    alerti  42               # store into the guarded range!
    j       loop
"""


def main() -> None:
    trace = generate_trace(PARSEC_PROFILES["freqmine"], seed=3,
                           length=10000)
    stores_in_range = sum(
        1 for r in trace.records
        if r.iclass.name == "STORE" and GUARD_LO <= r.mem_addr < GUARD_HI)
    print(f"workload contains {stores_in_range} stores into the "
          f"guarded 4 KB region")

    base = run_baseline(trace)
    system = FireGuardSystem([WatchpointKernel()])
    result = system.run(trace)

    hits = [a for a in result.alerts if a.code == 42]
    print(f"watchpoint fired {len(hits)} times "
          f"(expected {stores_in_range})")
    print(f"slowdown: {result.cycles / base:.3f}x")


if __name__ == "__main__":
    main()
