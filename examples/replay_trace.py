#!/usr/bin/env python3
"""Archive and replay a workload trace.

Results should be traceable to the exact workload that produced them:
this example generates a trace, injects attacks, saves it to disk,
reloads it, and shows the replayed simulation is bit-identical.  Both
runs share ONE built system through its simulation session — build
once, ``reset()``, run again — which is also a determinism check of
the session layer itself.
"""

import tempfile
from pathlib import Path

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.profiles import PARSEC_PROFILES


def main() -> None:
    trace = generate_trace(PARSEC_PROFILES["ferret"], seed=99,
                           length=8000)
    inject_attacks(trace, AttackKind.RET_HIJACK, 10)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ferret_attacked.fgt"
        save_trace(trace, path)
        print(f"saved {len(trace)} records "
              f"({path.stat().st_size / 1024:.0f} KiB) to {path.name}")

        replayed = load_trace(path)
        session = FireGuardSystem([make_kernel("shadow_stack")]).session()
        result_a = session.run(trace)
        session.reset()                 # back to the just-built state
        result_b = session.run(replayed)

        print(f"original run : {result_a.cycles} cycles, "
              f"{len(result_a.detections)} detections")
        print(f"replayed run : {result_b.cycles} cycles, "
              f"{len(result_b.detections)} detections")
        assert result_a.cycles == result_b.cycles
        print("replay is bit-identical (one system, session reset "
              "between runs)")


if __name__ == "__main__":
    main()
