#!/usr/bin/env python3
"""Feasibility: what would FireGuard cost on *your* core?

Reproduces the Table III methodology interactively: give the model a
core's area, technology node, IPC and frequency, and it estimates the
FireGuard configuration (filter width, µcore count) and silicon
overhead needed to keep up.
"""

from repro.analysis.area import (
    BOOM_SPEC,
    DENSITY_TO_14NM,
    ProcessorSpec,
    feasibility_row,
    feasibility_table,
)
from repro.analysis.report import format_table


def estimate(name: str, freq_ghz: float, tech_nm: int, area_mm2: float,
             ipc: float, commit_width: int) -> list[str]:
    spec = ProcessorSpec(
        name=name, soc="custom", freq_ghz=freq_ghz, tech_nm=tech_nm,
        area_mm2=area_mm2, ipc=ipc,
        published_throughput=(ipc * freq_ghz)
        / (BOOM_SPEC.ipc * BOOM_SPEC.freq_ghz),
        filter_width=commit_width)
    row = feasibility_row(spec)
    return [name, f"{row.area_at_14nm:.2f}", f"{row.num_ucores}",
            f"{row.overhead_mm2:.2f}",
            f"{row.overhead_pct_of_core:.1f}%"]


def main() -> None:
    print("Paper's Table III processors:")
    rows = [["processor", "area@14nm", "ucores", "overhead", "pct"]]
    for r in feasibility_table():
        rows.append([r.processor, f"{r.area_at_14nm:.2f}",
                     str(r.num_ucores), f"{r.overhead_mm2:.2f}",
                     f"{r.overhead_pct_of_core:.1f}%"])
    print(format_table(rows))

    print("\nHypothetical custom cores:")
    rows = [["processor", "area@14nm", "ucores", "overhead", "pct"]]
    rows.append(estimate("embedded-2wide", freq_ghz=1.5, tech_nm=14,
                         area_mm2=0.6, ipc=1.0, commit_width=2))
    rows.append(estimate("server-6wide", freq_ghz=3.6, tech_nm=7,
                         area_mm2=4.2, ipc=3.2, commit_width=6))
    print(format_table(rows))
    print(f"\n(density factors to 14 nm: {DENSITY_TO_14NM})")


if __name__ == "__main__":
    main()
