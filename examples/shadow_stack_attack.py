#!/usr/bin/env python3
"""Detect return-address hijacks with the shadow-stack kernel.

Injects ROP-style attacks (hijacked return targets) into a workload
and shows the shadow stack catching every one, with detection
latencies in nanoseconds (the paper's Fig 8 measurement).
"""

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.utils.stats import summarize_latencies


def main() -> None:
    trace = generate_trace(PARSEC_PROFILES["bodytrack"], seed=7,
                           length=12000)
    sites = inject_attacks(trace, AttackKind.RET_HIJACK, count=25)
    print(f"injected {len(sites)} return-address hijacks, e.g.:")
    for site in sites[:3]:
        print(f"  attack {site.attack_id} at instruction {site.seq}: "
              f"{site.detail}")

    system = FireGuardSystem([make_kernel("shadow_stack")])
    result = system.run(trace)

    print(f"\ndetected {len(result.detections)}/{len(sites)} attacks")
    summary = summarize_latencies(result.detection_latencies())
    print(f"detection latency: min {summary.minimum:.0f} ns, "
          f"median {summary.median:.0f} ns, "
          f"p90 {summary.p90:.0f} ns, max {summary.maximum:.0f} ns")

    # The same check in fixed-function hardware (1 HA) detects with
    # zero main-core overhead (§IV-A).
    system_ha = FireGuardSystem([make_kernel("shadow_stack")],
                                accelerated={"shadow_stack"})
    result_ha = system_ha.run(trace)
    print(f"\nhardware-accelerator variant: "
          f"{len(result_ha.detections)}/{len(sites)} detected")


if __name__ == "__main__":
    main()
