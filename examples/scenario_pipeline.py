"""Streamed multi-phase scenarios, end to end.

Builds a custom boot/serve/burst scenario, composes it straight to an
on-disk FGTRACE1 file (peak memory bounded by the largest phase),
then monitors it with two guardian kernels through the same streamed
reader — and shows the library-scenario shorthand the runner offers.

Run:  PYTHONPATH=src python examples/scenario_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.runner import RunSpec
from repro.service import Client
from repro.trace.attacks import AttackKind, AttackPlan
from repro.trace.scenario import Phase, Scenario, compose_stream
from repro.trace.stream import TraceReader


def main() -> None:
    scenario = Scenario(name="boot-serve-burst", phases=(
        Phase("dedup", 2500, label="boot"),
        Phase("swaptions", 3500, label="serve"),
        Phase("x264", 2000, label="burst", attacks=(
            AttackPlan(AttackKind.RET_HIJACK, 8),
            AttackPlan(AttackKind.OOB_ACCESS, 8),
        )),
    ))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scenario.fgt"
        trace, sites = compose_stream(scenario, seed=3, path=path)
        print(f"composed {len(trace)} records -> {path.name}")
        print(f"  digest  {trace.digest[:16]}...")
        print(f"  attacks {len(sites)} "
              f"({', '.join(sorted({s.kind.name for s in sites}))})")

        # The file is plain FGTRACE1: any reader can chunk through it.
        chunks = sum(1 for _ in TraceReader(path, chunk_records=2048))
        print(f"  {chunks} chunks of <=2048 records\n")

        # The client drives the same pipeline declaratively: scenario
        # specs compose to the worker's content-addressed spool and
        # simulate through the bounded-memory reader (stream=True).
        # map() streams records back as each kernel's run completes.
        client = Client()
        specs = [RunSpec(benchmark=scenario.name, kernels=(kernel,),
                         engines_per_kernel=2, scenario=scenario,
                         stream=True, length=scenario.total_length())
                 for kernel in ("shadow_stack", "asan")]
        for record in client.map(specs):
            result = record.result
            print(f"{record.spec.kernels[0]:>12}: "
                  f"slowdown {record.slowdown:.3f}  "
                  f"detections {len(result.detections)}/"
                  f"{record.injected_attacks}  "
                  f"digest {record.trace_digest[:12]}")

    # Library scenarios register like kernels do; a name is enough.
    record = client.run_one(RunSpec(
        benchmark="boot-then-serve", kernels=("shadow_stack",),
        engines_per_kernel=2, scenario="boot-then-serve", stream=True))
    print(f"\nlibrary 'boot-then-serve': slowdown "
          f"{record.slowdown:.3f}, detections "
          f"{len(record.result.detections)}/{record.injected_attacks}")
    client.close()


if __name__ == "__main__":
    main()
