#!/usr/bin/env python3
"""Quickstart: monitor a workload with AddressSanitizer on FireGuard.

Generates a synthetic PARSEC-like workload, runs it on the simulated
4-wide OoO core with a FireGuard frontend and four Rocket-style µcores
running the ASan guardian kernel, and reports the slowdown and
pipeline statistics.  The backend sweep at the end submits declarative
specs to the service client (the API every experiment harness uses):
``submit`` returns a future-like handle immediately, and ``map``
streams records back as they complete.
"""

from repro.core.system import FireGuardSystem, run_baseline
from repro.kernels import make_kernel
from repro.runner import RunSpec
from repro.service import Client
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES


def main() -> None:
    # 1. A workload: x264's instruction mix, 10k instructions.
    trace = generate_trace(PARSEC_PROFILES["x264"], seed=42, length=10000)
    print(f"workload: {trace.name}, {len(trace)} instructions, "
          f"{trace.mem_fraction():.0%} memory operations")

    # 2. Baseline: the unmonitored core.
    baseline = run_baseline(trace)
    print(f"baseline: {baseline} cycles")

    # 3. FireGuard with the AddressSanitizer kernel on 4 µcores.
    system = FireGuardSystem([make_kernel("asan")])
    result = system.run(trace)

    print(f"monitored: {result.cycles} cycles "
          f"(slowdown {result.cycles / baseline:.2f}x)")
    print(f"  packets filtered      : {result.packets_filtered}")
    print(f"  packets delivered     : {result.packets_delivered}")
    print(f"  commit back-pressure  : {result.stall_backpressure} cycles")
    print(f"  PRF port preemptions  : {result.prf_preemptions}")
    print(f"  ucore instructions    : {result.engine_instructions}")
    print(f"  wall time simulated   : {result.time_ns:.0f} ns")

    # 4. Scale the backend up and watch the overhead melt (Fig 10):
    #    declarative specs streamed through the service client.  Point
    #    REPRO_RESULT_STORE at a directory and reruns load these
    #    records instead of simulating.
    with Client() as client:
        specs = [RunSpec(benchmark="x264", kernels=("asan",),
                         engines_per_kernel=count, seed=42,
                         length=10000)
                 for count in (4, 12)]
        for record in client.map(specs):
            print(f"with {record.spec.engines_per_kernel:2d} ucores: "
                  f"slowdown {record.slowdown:.2f}x")


if __name__ == "__main__":
    main()
