#!/usr/bin/env python3
"""Scalability study: AddressSanitizer overhead vs µcore count.

Reproduces the Fig 10(c) experiment on a few workloads: the slowdown
collapses as analysis engines are added, with the memory-heavy x264
recovering slowest.  The whole grid is one declarative ``sweep`` call
streamed through the service client; set ``REPRO_WORKERS=<n>`` (or
pass ``workers=``) to fan the runs out over processes, and
``REPRO_RESULT_STORE=<dir>`` to make reruns free.
"""

from repro.analysis.report import format_table
from repro.runner import sweep
from repro.service import Client

WORKLOADS = ("swaptions", "dedup", "x264")
COUNTS = (2, 4, 6, 8, 12)


def main() -> None:
    specs = sweep(WORKLOADS, kernels=("asan",),
                  engines_per_kernel=list(COUNTS),
                  seed=11, length=8000)
    records = Client().map(specs)

    rows = [["benchmark"] + [f"{n} ucores" for n in COUNTS]]
    for name in WORKLOADS:
        row = [name]
        for _ in COUNTS:
            row.append(f"{next(records).slowdown:.2f}x")
        rows.append(row)
    print(format_table(rows, title="ASan slowdown vs ucore count "
                                   "(Fig 10(c) shape)"))


if __name__ == "__main__":
    main()
