#!/usr/bin/env python3
"""Scalability study: AddressSanitizer overhead vs µcore count.

Reproduces the Fig 10(c) experiment on a few workloads: the slowdown
collapses as analysis engines are added, with the memory-heavy x264
recovering slowest.
"""

from repro.analysis.report import format_table
from repro.core.system import FireGuardSystem, run_baseline
from repro.kernels import make_kernel
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

WORKLOADS = ("swaptions", "dedup", "x264")
COUNTS = (2, 4, 6, 8, 12)


def main() -> None:
    rows = [["benchmark"] + [f"{n} ucores" for n in COUNTS]]
    for name in WORKLOADS:
        trace = generate_trace(PARSEC_PROFILES[name], seed=11,
                               length=8000)
        base = run_baseline(trace)
        row = [name]
        for count in COUNTS:
            system = FireGuardSystem(
                [make_kernel("asan")],
                engines_per_kernel={"asan": count})
            result = system.run(trace)
            row.append(f"{result.cycles / base:.2f}x")
        rows.append(row)
    print(format_table(rows, title="ASan slowdown vs ucore count "
                                   "(Fig 10(c) shape)"))


if __name__ == "__main__":
    main()
